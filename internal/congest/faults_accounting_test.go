package congest

import (
	"fmt"
	"math/rand"
	"testing"

	"subgraph/internal/bitio"
	"subgraph/internal/graph"
)

// countingAdversary wraps an inner Adversary and independently measures,
// for every corrupted delivery, how many bits the delivered payload
// actually differs from the sent one — the ground truth the reported
// flip counts (and hence Stats.CorruptedBits) must match.
type countingAdversary struct {
	inner         Adversary
	corrupted     int64
	reportedFlips int64
	actualFlips   int64
	perMessageErr error
}

func (c *countingAdversary) Crashed(round, v int) bool { return c.inner.Crashed(round, v) }

func (c *countingAdversary) Deliver(round, fromV, toV, deliveredBits int, payload bitio.BitString) (bitio.BitString, FaultTag, int) {
	out, tag, flips := c.inner.Deliver(round, fromV, toV, deliveredBits, payload)
	if tag == FaultCorrupted {
		c.corrupted++
		c.reportedFlips += int64(flips)
		actual := 0
		for i := 0; i < payload.Len(); i++ {
			if payload.Bit(i) != out.Bit(i) {
				actual++
			}
		}
		c.actualFlips += int64(actual)
		if c.perMessageErr == nil {
			want := c.inner.(*planAdversary).plan.CorruptFlips
			if want > payload.Len() {
				want = payload.Len()
			}
			if actual != want {
				c.perMessageErr = fmt.Errorf(
					"corrupted %d-bit payload differs in %d bits, want min(CorruptFlips, len) = %d",
					payload.Len(), actual, want)
			}
		}
	}
	return out, tag, flips
}

// TestCorruptionAccountingMatchesActualFlips pins the accounting
// contract: every corrupted delivery differs from the sent payload in
// exactly min(CorruptFlips, len) bits (flip positions are sampled without
// replacement, so flips cannot cancel), and Stats.CorruptedBits equals
// the measured sent/delivered difference. Short payloads with a large
// CorruptFlips are the regime where with-replacement sampling used to
// pick duplicate positions, cancel flips, and over-report.
func TestCorruptionAccountingMatchesActualFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Complete(6)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			if env.Round() <= 4 {
				for port := 0; port < env.Degree(); port++ {
					width := 1 + env.Rand().Intn(12)
					value := env.Rand().Uint64() & (1<<uint(width) - 1)
					env.SendPort(port, bitio.Uint(value, width))
				}
				return
			}
			env.Halt()
		}}
	}
	for trial := 0; trial < 10; trial++ {
		plan := FaultPlan{
			Seed:         rng.Int63(),
			CorruptRate:  1,
			CorruptFlips: 1 + rng.Intn(16), // often > payload length
		}
		rec := &countingAdversary{inner: NewPlanAdversary(plan)}
		res, err := Run(NewNetwork(g), factory, Config{
			B: 16, MaxRounds: 8, Seed: rng.Int63(), Adversary: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rec.perMessageErr != nil {
			t.Fatalf("trial %d (flips=%d): %v", trial, plan.CorruptFlips, rec.perMessageErr)
		}
		if rec.corrupted == 0 {
			t.Fatalf("trial %d: no messages corrupted at CorruptRate=1", trial)
		}
		if rec.reportedFlips != rec.actualFlips {
			t.Fatalf("trial %d: adversary reported %d flips but payloads differ in %d bits",
				trial, rec.reportedFlips, rec.actualFlips)
		}
		if res.Stats.CorruptedBits != rec.actualFlips {
			t.Fatalf("trial %d: Stats.CorruptedBits = %d, actual differing bits = %d",
				trial, res.Stats.CorruptedBits, rec.actualFlips)
		}
		if res.Stats.CorruptedMessages != rec.corrupted {
			t.Fatalf("trial %d: Stats.CorruptedMessages = %d, adversary corrupted %d",
				trial, res.Stats.CorruptedMessages, rec.corrupted)
		}
	}
}

// TestCorruptFlipsCappedAtPayloadLength pins the boundary directly: a
// 4-bit payload under CorruptFlips=64 is delivered with all 4 bits
// inverted and accounted as 4 flipped bits.
func TestCorruptFlipsCappedAtPayloadLength(t *testing.T) {
	g := graph.Path(2)
	sent := bitio.Uint(0b1010, 4)
	var got bitio.BitString
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			for _, m := range inbox {
				got = m.Payload
			}
			if env.ID() == 0 && env.Round() == 1 {
				env.Send(1, sent)
			}
			if env.Round() == 3 {
				env.Halt()
			}
		}}
	}
	res, err := Run(NewNetwork(g), factory, Config{
		B: 8, MaxRounds: 5,
		Faults: &FaultPlan{CorruptRate: 1, CorruptFlips: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CorruptedBits != 4 {
		t.Fatalf("CorruptedBits = %d, want 4 (min(64, payload length))", res.Stats.CorruptedBits)
	}
	want := bitio.Uint(0b0101, 4)
	if !got.Equal(want) {
		t.Fatalf("delivered %v, want every bit inverted (%v)", got, want)
	}
}

// TestThrottleCapScansOncePerRound pins the per-round caching of the
// throttle-window scan: however many messages a round delivers, the
// window list is scanned exactly once per round, keeping Deliver O(1)
// per message even under plans with many windows.
func TestThrottleCapScansOncePerRound(t *testing.T) {
	plan := FaultPlan{}
	for i := 0; i < 1024; i++ {
		plan.Throttles = append(plan.Throttles, Throttle{FromRound: i + 1, ToRound: i + 2, Bits: 8 + i})
	}
	adv := NewPlanAdversary(plan).(*planAdversary)
	payload := bitio.Uint(0b101, 3)
	rounds := 5
	for round := 1; round <= rounds; round++ {
		for msg := 0; msg < 200; msg++ {
			adv.Deliver(round, 0, 1, 0, payload)
		}
	}
	if adv.capScans != rounds {
		t.Fatalf("throttle windows scanned %d times over %d rounds (1000 messages); want exactly once per round",
			adv.capScans, rounds)
	}
}

// BenchmarkPlanAdversaryDeliver measures per-message Deliver cost under a
// 1024-window throttle plan. With the per-round cap cache this is O(1)
// per message; before, every message paid a full window scan.
func BenchmarkPlanAdversaryDeliver(b *testing.B) {
	plan := FaultPlan{}
	for i := 0; i < 1024; i++ {
		plan.Throttles = append(plan.Throttles, Throttle{FromRound: 1, ToRound: 1 << 30, Bits: 1 << 20})
	}
	adv := NewPlanAdversary(plan)
	payload := bitio.Uint(0xABCD, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv.Deliver(1, 0, 1, 0, payload)
	}
}
