package congest

import (
	"math/rand"
	"testing"

	"subgraph/internal/bitio"
	"subgraph/internal/graph"
)

// oneShotNode sends a single token 0→1 in logical round 1; node 1 rejects
// at the deadline round if the token never arrived. A lost first
// transmission is unrecoverable for the plain node but not for the
// resilient decorator.
type oneShotNode struct {
	deadline int
	got      bool
}

func (o *oneShotNode) Init(env *Env) {}
func (o *oneShotNode) Round(env *Env, inbox []Message) {
	for _, m := range inbox {
		if v, ok := bitio.NewReader(m.Payload).ReadUint(8); ok && v == 0xAB {
			o.got = true
		}
	}
	if env.ID() == 0 && env.Round() == 1 {
		env.Send(1, bitio.Uint(0xAB, 8))
	}
	if env.Round() == o.deadline {
		if env.ID() == 1 && !o.got {
			env.Reject()
		}
		env.Halt()
	}
}

func TestResilientLosslessEquivalence(t *testing.T) {
	g := graph.GNP(14, 0.3, rand.New(rand.NewSource(11)))
	cfg := Config{B: 64, MaxRounds: 40, Seed: 5}
	nw := NewNetwork(g)
	plain, err := Run(nw, func() Node { return &floodNode{} }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	factory, rcfg, err := WrapResilient(func() Node { return &floodNode{} }, cfg, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nw2 := NewNetwork(g)
	res, err := Run(nw2, factory, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.Decisions {
		if plain.Decisions[v] != res.Decisions[v] {
			t.Fatalf("vertex %d: plain %v, resilient %v", v, plain.Decisions[v], res.Decisions[v])
		}
	}
	// Overhead: the physical execution is stretched and pays framing bits.
	stretch := ResilientConfig{}.Stretch()
	if res.Stats.Rounds <= plain.Stats.Rounds || res.Stats.Rounds > (plain.Stats.Rounds+1)*stretch {
		t.Fatalf("rounds %d vs plain %d (stretch %d)", res.Stats.Rounds, plain.Stats.Rounds, stretch)
	}
	if res.Stats.TotalBits <= plain.Stats.TotalBits {
		t.Fatalf("bits %d vs plain %d: framing overhead missing", res.Stats.TotalBits, plain.Stats.TotalBits)
	}
}

func TestResilientRecoversTargetedDrop(t *testing.T) {
	g := graph.Path(2)
	cfg := Config{B: 8, MaxRounds: 6}
	// Plain run: dropping the only transmission loses the token for good.
	plan := &FaultPlan{Drops: []TargetedDrop{{Round: 1, From: 0, To: 1}}}
	nw := NewNetwork(g)
	plainCfg := cfg
	plainCfg.Faults = plan
	plain, err := Run(nw, func() Node { return &oneShotNode{deadline: 4} }, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Rejected() {
		t.Fatal("plain node survived a dropped one-shot message")
	}
	// Resilient run under the same drop (physical round 1 is the bundle's
	// first transmission): the slot-2 retransmission gets it through.
	factory, rcfg, err := WrapResilient(func() Node { return &oneShotNode{deadline: 4} }, cfg, ResilientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Faults = plan
	nw2 := NewNetwork(g)
	res, err := Run(nw2, factory, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected() {
		t.Fatal("resilient node failed to recover the dropped transmission")
	}
	if res.Stats.DroppedMessages == 0 {
		t.Fatal("adversary never fired")
	}
}

func TestResilientSurvivesRandomDrops(t *testing.T) {
	g := graph.GNP(10, 0.4, rand.New(rand.NewSource(2)))
	cfg := Config{B: 64, MaxRounds: 30, Seed: 9}
	factory, rcfg, err := WrapResilient(func() Node { return &floodNode{} }, cfg,
		ResilientConfig{MaxRetries: 4})
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Faults = &FaultPlan{Seed: 1, DropRate: 0.25}
	nw := NewNetwork(g)
	res, err := Run(nw, factory, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	// With 5 transmissions per bundle at 25% loss, every bundle gets
	// through (failure odds ~1e-3 per bundle; the seed is fixed anyway).
	if res.Rejected() {
		t.Fatal("flood failed under 25% drops despite retransmission")
	}
	if res.Stats.DroppedMessages == 0 {
		t.Fatal("adversary never fired")
	}
}

func TestWrapResilientRejectsBroadcast(t *testing.T) {
	if _, _, err := WrapResilient(func() Node { return &floodNode{} },
		Config{B: 8, MaxRounds: 4, Broadcast: true}, ResilientConfig{}); err == nil {
		t.Fatal("broadcast config accepted")
	}
}
