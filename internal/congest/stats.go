package congest

import (
	"fmt"
	"strings"
)

// String renders the stats as a compact one-line summary.
func (s Stats) String() string {
	line := fmt.Sprintf("rounds=%d bits=%d msgs=%d maxedge=%d",
		s.Rounds, s.TotalBits, s.TotalMessages, s.MaxEdgeBitsRound)
	if s.DroppedMessages > 0 || s.CorruptedMessages > 0 || s.CrashedNodes > 0 {
		line += fmt.Sprintf(" dropped=%d corrupted=%d crashed=%d",
			s.DroppedMessages, s.CorruptedMessages, s.CrashedNodes)
	}
	return line
}

// Summary renders a multi-line human-readable report of the run's
// communication measurements: totals, the peak single-edge load, the
// busiest round and sender, and — when the adversary acted — the fault
// tallies. Lines are "name : value" aligned to match the CLI output style.
func (s Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds   : %d\n", s.Rounds)
	fmt.Fprintf(&b, "traffic  : %d bits in %d messages", s.TotalBits, s.TotalMessages)
	if s.Rounds > 0 {
		fmt.Fprintf(&b, " (%.1f bits/round)", float64(s.TotalBits)/float64(s.Rounds))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "edge load: max %d bits on one directed edge in a round\n", s.MaxEdgeBitsRound)
	if r, bits := s.peakRound(); r > 0 {
		fmt.Fprintf(&b, "peak     : round %d with %d bits", r, bits)
		if v, nb := s.peakNode(); v >= 0 {
			fmt.Fprintf(&b, "; busiest sender vertex %d with %d bits total", v, nb)
		}
		b.WriteByte('\n')
	}
	if s.DroppedMessages > 0 || s.CorruptedMessages > 0 || s.CrashedNodes > 0 {
		fmt.Fprintf(&b, "faults   : %d dropped, %d corrupted (%d bits flipped), %d crashed\n",
			s.DroppedMessages, s.CorruptedMessages, s.CorruptedBits, s.CrashedNodes)
	}
	return b.String()
}

// peakRound returns the 1-based round carrying the most bits (ties to the
// earliest), or (0, 0) when no rounds ran.
func (s Stats) peakRound() (round int, bits int64) {
	for i, b := range s.PerRoundBits {
		if round == 0 || b > bits {
			round, bits = i+1, b
		}
	}
	return round, bits
}

// peakNode returns the vertex that sent the most bits (ties to the lowest
// index), or (-1, 0) when the per-node slice is empty.
func (s Stats) peakNode() (vertex int, bits int64) {
	vertex = -1
	for v, b := range s.PerNodeBits {
		if vertex < 0 || b > bits {
			vertex, bits = v, b
		}
	}
	return vertex, bits
}
