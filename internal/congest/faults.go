package congest

import (
	"fmt"
	"math/rand"

	"subgraph/internal/bitio"
)

// The fault model. Definition 1 assumes perfectly reliable synchronous
// links; this file adds a seeded, deterministic adversary that sits in the
// runner's delivery phase and may drop messages (Bernoulli or targeted),
// flip payload bits, crash-stop nodes at chosen rounds, and throttle
// per-edge delivery below the advertised bandwidth for round windows.
// All fault decisions are made sequentially in the runner's deterministic
// delivery order, so the sequential and parallel engines remain
// bit-identical under any plan, and a zero plan is a no-op.
//
// Accounting convention: Stats keeps charging the *algorithm's* cost —
// dropped messages still count toward TotalBits/TotalMessages (they were
// transmitted; the adversary ate them in flight). The adversary's actions
// are reported separately in DroppedMessages / CorruptedMessages /
// CorruptedBits / CrashedNodes and as FaultTag annotations on transcript
// entries. Delivered inbox copies never carry a tag: a node cannot tell a
// corrupted payload from a genuine one, which is what makes the model
// adversarial rather than detectable-erasure.

// FaultTag annotates a transcript entry with the adversary's action on
// that message. The zero value means the message was delivered untouched.
type FaultTag int8

const (
	// FaultNone marks an untouched, delivered message.
	FaultNone FaultTag = iota
	// FaultDropped marks a withheld message (Bernoulli, targeted, or
	// throttled); it was never delivered.
	FaultDropped
	// FaultCorrupted marks a message delivered with flipped payload bits;
	// the transcript entry shows the corrupted payload as delivered.
	FaultCorrupted
)

func (t FaultTag) String() string {
	switch t {
	case FaultDropped:
		return "dropped"
	case FaultCorrupted:
		return "corrupted"
	}
	return "ok"
}

// Crash is a crash-stop failure: Vertex executes rounds < Round only and
// is silent forever after. Messages it sent in earlier rounds are still
// delivered (they were already in flight).
type Crash struct {
	Vertex int
	Round  int
}

// TargetedDrop withholds every message on the directed edge From→To
// (vertex indices) in the given round.
type TargetedDrop struct {
	Round    int
	From, To int
}

// Throttle caps *delivery* on every directed edge at Bits per round during
// rounds [FromRound, ToRound] (inclusive). Messages beyond the cap are
// dropped whole, in emission order. The model bandwidth B is still
// enforced against what the algorithm sends — throttling is the network
// degrading underneath a correct algorithm, not a model violation.
type Throttle struct {
	FromRound, ToRound int
	Bits               int
}

// FaultPlan is a declarative, seeded fault configuration. The zero value
// injects no faults; Config.Faults = nil and Config.Faults = &FaultPlan{}
// produce bit-identical executions.
type FaultPlan struct {
	// Seed drives the adversary's private random source, independent of
	// the run seed (so the same algorithm randomness can be replayed
	// against different fault draws and vice versa).
	Seed int64
	// DropRate is the per-message Bernoulli drop probability in [0,1].
	DropRate float64
	// CorruptRate is the per-message Bernoulli corruption probability in
	// [0,1]; a corrupted message has CorruptFlips distinct uniformly random
	// payload bits flipped. Empty payloads are never corrupted.
	CorruptRate float64
	// CorruptFlips is the number of bit flips per corrupted message
	// (default 1). Flip positions are sampled without replacement, so a
	// corrupted payload differs from the original in exactly
	// min(CorruptFlips, payload length) bits — the count reported in
	// Stats.CorruptedBits.
	CorruptFlips int
	// Drops lists targeted per-edge per-round drops.
	Drops []TargetedDrop
	// Crashes lists crash-stop failures.
	Crashes []Crash
	// Throttles lists round windows of reduced per-edge delivery capacity.
	Throttles []Throttle
}

// Empty reports whether the plan injects no faults at all.
func (p *FaultPlan) Empty() bool {
	return p.DropRate == 0 && p.CorruptRate == 0 &&
		len(p.Drops) == 0 && len(p.Crashes) == 0 && len(p.Throttles) == 0
}

func (p *FaultPlan) validate() error {
	if p.DropRate < 0 || p.DropRate > 1 {
		return fmt.Errorf("congest: DropRate %v outside [0,1]", p.DropRate)
	}
	if p.CorruptRate < 0 || p.CorruptRate > 1 {
		return fmt.Errorf("congest: CorruptRate %v outside [0,1]", p.CorruptRate)
	}
	for _, c := range p.Crashes {
		if c.Round < 1 {
			return fmt.Errorf("congest: crash round %d for vertex %d (rounds are 1-based)", c.Round, c.Vertex)
		}
	}
	return nil
}

// Adversary is the runner's delivery-phase fault hook. The runner calls
// Crashed once per vertex per round (in vertex order, before the execution
// phase) and Deliver once per message, in the deterministic delivery order
// (sender vertex, then emission order). Implementations must be
// deterministic functions of their construction state and call sequence;
// the runner guarantees the call sequence is identical across engines.
type Adversary interface {
	// Crashed reports whether vertex v is crash-stopped at the start of
	// round (1-based). Once true for some round it must stay true for all
	// later rounds.
	Crashed(round, v int) bool
	// Deliver inspects one message about to be delivered. deliveredBits is
	// the number of payload bits already delivered (post-drop) on the same
	// directed edge this round, for throttling decisions. It returns the
	// payload to deliver (possibly corrupted), the action taken, and the
	// number of bits flipped (0 unless the tag is FaultCorrupted).
	Deliver(round, fromV, toV, deliveredBits int, payload bitio.BitString) (bitio.BitString, FaultTag, int)
}

// planAdversary compiles a FaultPlan into the runner's hook.
type planAdversary struct {
	plan     FaultPlan
	rng      *rand.Rand
	targeted map[[3]int]struct{}
	crashAt  map[int]int // vertex → earliest crash round

	// Per-round throttle-cap cache: the tightest window covering a round
	// is a pure function of the round number, so it is computed once per
	// round (on the first Deliver of that round) instead of rescanning
	// every window for every message. capRound is the round the cached
	// values describe (0 = nothing cached yet; rounds are 1-based).
	capRound int
	capBits  int
	capOn    bool
	capScans int // recomputations, pinned by the O(1)-per-message test

	// Scratch for corruptPayload, reused across messages.
	flipIdx  []int
	flipMark []bool
}

// NewPlanAdversary compiles a declarative plan into a deterministic
// Adversary. Run compiles Config.Faults with this automatically; it is
// exported for callers composing custom hooks on top.
func NewPlanAdversary(plan FaultPlan) Adversary {
	if plan.CorruptFlips <= 0 {
		plan.CorruptFlips = 1
	}
	a := &planAdversary{
		plan:     plan,
		rng:      rand.New(rand.NewSource(mixSeed(plan.Seed, -0x5EED))),
		targeted: make(map[[3]int]struct{}, len(plan.Drops)),
		crashAt:  make(map[int]int, len(plan.Crashes)),
	}
	for _, d := range plan.Drops {
		a.targeted[[3]int{d.Round, d.From, d.To}] = struct{}{}
	}
	for _, c := range plan.Crashes {
		if r, ok := a.crashAt[c.Vertex]; !ok || c.Round < r {
			a.crashAt[c.Vertex] = c.Round
		}
	}
	return a
}

func (a *planAdversary) Crashed(round, v int) bool {
	r, ok := a.crashAt[v]
	return ok && round >= r
}

// throttleCap returns the tightest delivery cap covering round, if any.
// The scan over the plan's windows runs at most once per round; every
// further message of the same round is answered from the cached values,
// keeping Deliver O(1) per message however many windows the plan holds.
func (a *planAdversary) throttleCap(round int) (int, bool) {
	if round != a.capRound {
		a.capRound = round
		a.capBits, a.capOn = 0, false
		a.capScans++
		for _, t := range a.plan.Throttles {
			if round >= t.FromRound && round <= t.ToRound && (!a.capOn || t.Bits < a.capBits) {
				a.capBits, a.capOn = t.Bits, true
			}
		}
	}
	return a.capBits, a.capOn
}

func (a *planAdversary) Deliver(round, fromV, toV, deliveredBits int, payload bitio.BitString) (bitio.BitString, FaultTag, int) {
	if _, hit := a.targeted[[3]int{round, fromV, toV}]; hit {
		return payload, FaultDropped, 0
	}
	if cap, ok := a.throttleCap(round); ok && deliveredBits+payload.Len() > cap {
		return payload, FaultDropped, 0
	}
	if a.plan.DropRate > 0 && a.rng.Float64() < a.plan.DropRate {
		return payload, FaultDropped, 0
	}
	if a.plan.CorruptRate > 0 && payload.Len() > 0 && a.rng.Float64() < a.plan.CorruptRate {
		out, flipped := a.corruptPayload(payload)
		return out, FaultCorrupted, flipped
	}
	return payload, FaultNone, 0
}

// corruptPayload flips min(CorruptFlips, len) DISTINCT bit positions of s,
// sampled by a partial Fisher–Yates shuffle, and returns the corrupted
// payload with the true flip count. Sampling without replacement matters
// for the accounting contract: drawing positions independently could pick
// the same bit twice, so the flips would cancel and the message would be
// reported as corrupted with more flipped bits than actually differ. The
// rewrite is a single pass over the payload (O(len + flips)) instead of
// one full copy per flip (O(len · flips)).
func (a *planAdversary) corruptPayload(s bitio.BitString) (bitio.BitString, int) {
	L := s.Len()
	k := a.plan.CorruptFlips
	if k > L {
		k = L
	}
	if cap(a.flipIdx) < L {
		a.flipIdx = make([]int, L)
		a.flipMark = make([]bool, L)
	}
	idx, mark := a.flipIdx[:L], a.flipMark[:L]
	for i := range idx {
		idx[i] = i
		mark[i] = false
	}
	for i := 0; i < k; i++ {
		j := i + a.rng.Intn(L-i)
		idx[i], idx[j] = idx[j], idx[i]
		mark[idx[i]] = true
	}
	w := bitio.NewWriter()
	for i := 0; i < L; i++ {
		b := s.Bit(i)
		if mark[i] {
			b ^= 1
		}
		w.WriteBit(b)
	}
	return w.BitString(), k
}
