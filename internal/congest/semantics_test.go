package congest

import (
	"testing"

	"subgraph/internal/bitio"
	"subgraph/internal/graph"
)

// Semantics pinned by these tests: messages sent in a node's final round
// (before Halt) are still delivered; broadcast-mode messages are
// identical across edges; per-round bandwidth resets between rounds.

func TestMessagesFromHaltingNodeDelivered(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	received := false
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			switch env.ID() {
			case 0:
				if env.Round() == 1 {
					env.Send(1, bitio.Uint(1, 4))
					env.Halt() // halt immediately after sending
				}
			case 1:
				if len(inbox) > 0 {
					received = true
					env.Halt()
				}
			}
		}}
	}
	if _, err := Run(nw, factory, Config{B: 8, MaxRounds: 5}); err != nil {
		t.Fatal(err)
	}
	if !received {
		t.Fatal("message from halting node lost")
	}
}

func TestBandwidthResetsBetweenRounds(t *testing.T) {
	// B bits every round is fine; the limit is per round, not cumulative.
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			if env.Round() > 10 {
				env.Halt()
				return
			}
			env.Broadcast(bitio.Uint(0, 8))
		}}
	}
	res, err := Run(nw, factory, Config{B: 8, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalBits != 2*10*8 {
		t.Fatalf("total bits %d", res.Stats.TotalBits)
	}
}

func TestBroadcastModeRuns(t *testing.T) {
	g := graph.Cycle(5)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			if env.Round() > 3 {
				env.Halt()
				return
			}
			env.Broadcast(bitio.Uint(uint64(env.Round()), 4))
		}}
	}
	res, err := Run(nw, factory, Config{B: 4, MaxRounds: 10, Broadcast: true, RecordTranscript: true})
	if err != nil {
		t.Fatal(err)
	}
	// In broadcast mode each node's per-round messages carry one payload.
	for _, round := range res.Transcript.Rounds {
		byFrom := map[NodeID]string{}
		for _, m := range round {
			if prev, ok := byFrom[m.From]; ok && prev != m.Payload.String() {
				t.Fatal("broadcast round carried differing payloads")
			}
			byFrom[m.From] = m.Payload.String()
		}
	}
}

func TestRejectThenHaltKeepsDecision(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			env.Reject()
			env.Halt()
		}}
	}
	res, err := Run(nw, factory, Config{B: 4, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected() {
		t.Fatal("reject lost at halt")
	}
}

func TestEmptyPayloadMessagesCostNothing(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			if env.Round() == 1 {
				env.Broadcast(bitio.BitString{})
				return
			}
			if env.ID() == 1 && len(inbox) != 1 {
				env.Reject()
			}
			env.Halt()
		}}
	}
	res, err := Run(nw, factory, Config{B: 1, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected() {
		t.Fatal("empty message not delivered")
	}
	if res.Stats.TotalBits != 0 {
		t.Fatalf("empty payloads billed %d bits", res.Stats.TotalBits)
	}
	if res.Stats.TotalMessages != 2 { // two nodes, one neighbor each
		t.Fatalf("message count %d", res.Stats.TotalMessages)
	}
}
