package congest

import (
	"time"

	"subgraph/internal/bitio"
	"subgraph/internal/obs"
)

// runTrace is the per-run instrumentation state behind Config.Tracer. A
// nil *runTrace is the disabled state: every hook is a nil-receiver no-op
// taking only value arguments, so the runner's hot loop performs zero
// allocations and no timestamp reads when tracing is off (enforced by
// TestDisabledTraceHooksAllocFree and the runner overhead benchmarks).
//
// All hooks run on the runner's orchestrating goroutine except the
// parallel engine's per-worker busy-time stores, which write disjoint
// workerBusy slots and are read only after wg.Wait().
type runTrace struct {
	t         obs.Tracer
	runStart  time.Time
	setupDone time.Time // end of the setup phase = start of the round loop
	loopDone  time.Time // end of the round loop = start of teardown

	roundStart   time.Time
	deliverStart time.Time
	computeNs    int64
	utilization  float64

	workerBusy []int64

	// Snapshots of cumulative Stats counters at round start, for
	// per-round deltas.
	prevMsgs, prevDropped, prevCorrupted int64

	// Already-reported node transitions, keyed by vertex.
	halted, rejected []bool
}

// newRunTrace returns nil when t is nil — the zero-overhead path.
func newRunTrace(t obs.Tracer, n int) *runTrace {
	if t == nil {
		return nil
	}
	return &runTrace{
		t:        t,
		runStart: time.Now(),
		halted:   make([]bool, n),
		rejected: make([]bool, n),
	}
}

func (rt *runTrace) onRunStart(nw *Network, cfg Config, workers int) {
	if rt == nil {
		return
	}
	info := obs.RunInfo{
		Engine:    "sequential",
		Nodes:     nw.N(),
		Edges:     nw.G.M(),
		Bandwidth: cfg.B,
		MaxRounds: cfg.MaxRounds,
		Seed:      cfg.Seed,
		Broadcast: cfg.Broadcast,
	}
	if cfg.Parallel {
		info.Engine = "parallel"
		info.Workers = workers
	}
	rt.t.RunStart(info)
}

// onSetupDone reports the "setup" phase: node construction + Init calls.
func (rt *runTrace) onSetupDone() {
	if rt == nil {
		return
	}
	rt.setupDone = time.Now()
	rt.t.Phase("setup", rt.setupDone.Sub(rt.runStart))
}

// onRoundsDone reports the "rounds" phase: the whole round loop, from the
// end of setup to the loop's exit (normal completion or abort). Called at
// the top of finishRun so every exit path emits it exactly once.
func (rt *runTrace) onRoundsDone() {
	if rt == nil {
		return
	}
	rt.loopDone = time.Now()
	rt.t.Phase("rounds", rt.loopDone.Sub(rt.setupDone))
}

// onTeardownDone reports the "teardown" phase: decision assembly after the
// round loop, immediately before RunEnd closes the trace.
func (rt *runTrace) onTeardownDone() {
	if rt == nil {
		return
	}
	rt.t.Phase("teardown", time.Since(rt.loopDone))
}

// onRoundStart opens a round; msgs/dropped/corrupted are the cumulative
// Stats counters at round start (value parameters, so a nil receiver
// never forces Stats to escape).
func (rt *runTrace) onRoundStart(round int, msgs, dropped, corrupted int64) {
	if rt == nil {
		return
	}
	rt.prevMsgs = msgs
	rt.prevDropped = dropped
	rt.prevCorrupted = corrupted
	rt.roundStart = time.Now()
	rt.t.RoundStart(round)
}

// workerSlots returns the per-worker busy accumulator, sized and zeroed
// for this round's compute phase.
func (rt *runTrace) workerSlots(workers int) []int64 {
	if rt == nil {
		return nil
	}
	if cap(rt.workerBusy) < workers {
		rt.workerBusy = make([]int64, workers)
	}
	rt.workerBusy = rt.workerBusy[:workers]
	for i := range rt.workerBusy {
		rt.workerBusy[i] = 0
	}
	return rt.workerBusy
}

// onComputeEnd closes the round's node-step phase. launched is the number
// of worker goroutines actually started (0 for the sequential engine).
func (rt *runTrace) onComputeEnd(launched int) {
	if rt == nil {
		return
	}
	rt.computeNs = time.Since(rt.roundStart).Nanoseconds()
	rt.utilization = 1
	if launched > 0 && rt.computeNs > 0 {
		var busy int64
		for _, b := range rt.workerBusy[:launched] {
			busy += b
		}
		rt.utilization = float64(busy) / (float64(launched) * float64(rt.computeNs))
	}
	rt.deliverStart = time.Now()
}

func (rt *runTrace) onCrash(round, v int, id NodeID) {
	if rt == nil {
		return
	}
	rt.t.Fault(obs.FaultEvent{Round: round, Kind: "crash", Vertex: v, ID: int64(id)})
}

// onMessage observes one sent message in delivery order. bits is the
// payload length as sent; payload is the payload as delivered.
func (rt *runTrace) onMessage(round, fromV, toV int, fromID, toID NodeID,
	bits int, payload bitio.BitString, tag FaultTag, flipped int) {
	if rt == nil {
		return
	}
	ev := obs.MessageEvent{
		Round:      round,
		FromVertex: fromV,
		ToVertex:   toV,
		FromID:     int64(fromID),
		ToID:       int64(toID),
		Bits:       bits,
		Payload:    payload.String(),
	}
	switch tag {
	case FaultDropped:
		ev.Fault = "dropped"
	case FaultCorrupted:
		ev.Fault = "corrupted"
		ev.FlippedBits = flipped
	}
	rt.t.Message(ev)
}

// onNodeScan reports reject/halt transitions for vertex v; called once per
// vertex per round from the sequential delivery scan.
func (rt *runTrace) onNodeScan(round, v int, env *Env) {
	if rt == nil {
		return
	}
	if !rt.rejected[v] && env.decision == Reject {
		rt.rejected[v] = true
		rt.t.Node(obs.NodeEvent{Round: round, Kind: "reject", Vertex: v, ID: int64(env.id)})
	}
	if !rt.halted[v] && env.halted {
		rt.halted[v] = true
		rt.t.Node(obs.NodeEvent{Round: round, Kind: "halt", Vertex: v, ID: int64(env.id)})
	}
}

// onRoundEnd closes a round; bits is the round's sent-bit count and
// msgs/dropped/corrupted are the cumulative Stats counters at round end.
func (rt *runTrace) onRoundEnd(round int, bits, msgs, dropped, corrupted int64, active int) {
	if rt == nil {
		return
	}
	rt.t.RoundEnd(obs.RoundStats{
		Round:             round,
		Bits:              bits,
		Messages:          msgs - rt.prevMsgs,
		Dropped:           dropped - rt.prevDropped,
		Corrupted:         corrupted - rt.prevCorrupted,
		ActiveNodes:       active,
		ComputeNs:         rt.computeNs,
		DeliverNs:         time.Since(rt.deliverStart).Nanoseconds(),
		WorkerUtilization: rt.utilization,
	})
}

// onRunEnd closes the run. outcome is "completed" or "aborted"; errMsg
// carries the abort reason.
func (rt *runTrace) onRunEnd(res *Result, outcome, errMsg string) {
	if rt == nil {
		return
	}
	sum := obs.RunSummary{
		Outcome:          outcome,
		Error:            errMsg,
		Rounds:           res.Stats.Rounds,
		TotalBits:        res.Stats.TotalBits,
		TotalMessages:    res.Stats.TotalMessages,
		MaxEdgeBitsRound: res.Stats.MaxEdgeBitsRound,
		Dropped:          res.Stats.DroppedMessages,
		Corrupted:        res.Stats.CorruptedMessages,
		CorruptedBits:    res.Stats.CorruptedBits,
		CrashedNodes:     res.Stats.CrashedNodes,
		WallNs:           time.Since(rt.runStart).Nanoseconds(),
	}
	for _, d := range res.Decisions {
		if d == Reject {
			sum.Rejects++
		} else {
			sum.Accepts++
		}
	}
	rt.t.RunEnd(sum)
}
