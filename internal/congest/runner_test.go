package congest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"subgraph/internal/bitio"
	"subgraph/internal/graph"
)

// floodNode floods the minimum identifier seen so far; a standard leader
// election building block that exercises broadcast, state and halting.
type floodNode struct {
	min    NodeID
	rounds int
}

func (f *floodNode) Init(env *Env) { f.min = env.ID() }

func (f *floodNode) Round(env *Env, inbox []Message) {
	for _, m := range inbox {
		r := bitio.NewReader(m.Payload)
		v, ok := r.ReadUint(32)
		if !ok {
			panic("flood: malformed payload")
		}
		if NodeID(v) < f.min {
			f.min = NodeID(v)
		}
	}
	f.rounds++
	if f.rounds > env.N() {
		if f.min != 0 {
			env.Reject()
		}
		env.Halt()
		return
	}
	env.Broadcast(bitio.Uint(uint64(f.min), 32))
}

func TestFloodFindsMinimum(t *testing.T) {
	g := graph.Cycle(10)
	nw := NewNetwork(g)
	res, err := Run(nw, func() Node { return &floodNode{} }, Config{B: 64, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected() {
		t.Fatal("flood rejected despite min id 0 present")
	}
	if res.Stats.Rounds == 0 || res.Stats.TotalBits == 0 {
		t.Fatalf("stats empty: %+v", res.Stats)
	}
}

func TestFloodOnShiftedIDs(t *testing.T) {
	g := graph.Cycle(6)
	ids := []NodeID{5, 9, 12, 7, 30, 44} // no id 0 → everyone rejects
	nw := NewNetworkWithIDs(g, ids)
	res, err := Run(nw, func() Node { return &floodNode{} }, Config{B: 64, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected() {
		t.Fatal("expected rejection with min id 5")
	}
}

func TestBandwidthViolationDetected(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			env.Broadcast(bitio.Uint(0, 10)) // 10 bits on a B=8 edge
		}}
	}
	_, err := Run(nw, factory, Config{B: 8, MaxRounds: 3})
	if err == nil || !strings.Contains(err.Error(), "bandwidth violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestBandwidthAccumulatesWithinRound(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			// Two 5-bit messages on the same edge in one round: 10 > 8.
			for i := 0; i < 2; i++ {
				env.Send(env.Neighbors()[0], bitio.Uint(1, 5))
			}
		}}
	}
	_, err := Run(nw, factory, Config{B: 8, MaxRounds: 2})
	if err == nil || !strings.Contains(err.Error(), "bandwidth violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnboundedBandwidthLocalModel(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			env.Broadcast(bitio.FromBytes(make([]byte, 10000)))
			env.Halt()
		}}
	}
	res, err := Run(nw, factory, Config{B: 0, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalBits != 2*80000 {
		t.Fatalf("total bits %d", res.Stats.TotalBits)
	}
}

func TestSendToNonNeighborFails(t *testing.T) {
	g := graph.Path(3) // 0-1-2: 0 and 2 not adjacent
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			if env.ID() == 0 {
				env.Send(2, bitio.Uint(1, 1))
			}
		}}
	}
	_, err := Run(nw, factory, Config{B: 8, MaxRounds: 2})
	if err == nil || !strings.Contains(err.Error(), "non-neighbor") {
		t.Fatalf("err = %v", err)
	}
}

func TestSendDuringInitFails(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnInit: func(env *Env) {
			env.Send(env.Neighbors()[0], bitio.Uint(1, 1))
		}}
	}
	_, err := Run(nw, factory, Config{B: 8, MaxRounds: 2})
	if err == nil || !strings.Contains(err.Error(), "Init") {
		t.Fatalf("err = %v", err)
	}
}

func TestBroadcastModeForbidsSend(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			env.Send(env.Neighbors()[0], bitio.Uint(1, 1))
		}}
	}
	_, err := Run(nw, factory, Config{B: 8, MaxRounds: 2, Broadcast: true})
	if err == nil || !strings.Contains(err.Error(), "broadcast") {
		t.Fatalf("err = %v", err)
	}
}

func TestMessageDeliveryNextRound(t *testing.T) {
	// Node 0 sends its round number; node 1 verifies it arrives one round
	// later.
	g := graph.Path(2)
	nw := NewNetwork(g)
	var got []int
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			if env.ID() == 0 {
				env.Send(1, bitio.Uint(uint64(env.Round()), 8))
			} else {
				for _, m := range inbox {
					r := bitio.NewReader(m.Payload)
					v, _ := r.ReadUint(8)
					got = append(got, env.Round()-int(v))
				}
			}
		}}
	}
	if _, err := Run(nw, factory, Config{B: 8, MaxRounds: 5}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("deliveries: %d", len(got))
	}
	for _, lag := range got {
		if lag != 1 {
			t.Fatalf("delivery lag %d, want 1", lag)
		}
	}
}

func TestInboxSortedBySender(t *testing.T) {
	g := graph.Star(5) // center 0
	ids := []NodeID{100, 42, 7, 99, 3, 55}
	nw := NewNetworkWithIDs(g, ids)
	ok := true
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			for i := 1; i < len(inbox); i++ {
				if inbox[i-1].From > inbox[i].From {
					ok = false
				}
			}
			env.Broadcast(bitio.Uint(1, 1))
		}}
	}
	if _, err := Run(nw, factory, Config{B: 8, MaxRounds: 3}); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("inbox not sorted by sender id")
	}
}

func TestHaltStopsRun(t *testing.T) {
	g := graph.Cycle(4)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			if env.Round() == 2 {
				env.Halt()
			}
		}}
	}
	res, err := Run(nw, factory, Config{B: 8, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	// The run stops once all nodes have halted; Rounds reflects the last
	// round in which any node executed.
	if res.Stats.Rounds != 2 {
		t.Fatalf("rounds = %d", res.Stats.Rounds)
	}
}

func TestHaltedNodeReceivesNothingMore(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	roundsSeen := map[NodeID]int{}
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			roundsSeen[env.ID()]++
			if env.ID() == 0 {
				env.Halt()
			}
			if env.Round() == 3 {
				env.Halt()
			}
		}}
	}
	if _, err := Run(nw, factory, Config{B: 8, MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	if roundsSeen[0] != 1 {
		t.Fatalf("halted node ran %d rounds", roundsSeen[0])
	}
	if roundsSeen[1] != 3 {
		t.Fatalf("other node ran %d rounds", roundsSeen[1])
	}
}

func TestDecisionLatch(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			env.Reject()
			env.Accept() // must not clear the reject
			env.Halt()
		}}
	}
	res, err := Run(nw, factory, Config{B: 8, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	for v, d := range res.Decisions {
		if d != Reject {
			t.Fatalf("vertex %d decision %v", v, d)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	g := graph.Cycle(5)
	run := func(parallel bool) []uint64 {
		nw := NewNetwork(g)
		out := make([]uint64, g.N())
		factory := func() Node {
			return &FuncNode{OnRound: func(env *Env, _ []Message) {
				out[int(env.ID())] = env.Rand().Uint64()
				env.Halt()
			}}
		}
		if _, err := Run(nw, factory, Config{B: 8, MaxRounds: 2, Seed: 42, Parallel: parallel}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rng diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTranscriptRecording(t *testing.T) {
	g := graph.Path(2)
	nw := NewNetwork(g)
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			if env.Round() <= 2 {
				env.Broadcast(bitio.Uint(uint64(env.Round()), 4))
			} else {
				env.Halt()
			}
		}}
	}
	res, err := Run(nw, factory, Config{B: 8, MaxRounds: 10, RecordTranscript: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transcript == nil {
		t.Fatal("no transcript")
	}
	if len(res.Transcript.Rounds[0]) != 2 {
		t.Fatalf("round 1 has %d messages", len(res.Transcript.Rounds[0]))
	}
}

func TestDuplicateIDNetwork(t *testing.T) {
	g := graph.Star(2) // center 0, leaves 1, 2
	ids := []NodeID{9, 5, 5}
	nw := NewNetworkWithDuplicateIDs(g, ids)
	// Sending by duplicate ID must fail; SendPort must work.
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			if env.ID() == 9 {
				env.Send(5, bitio.Uint(1, 1))
			}
		}}
	}
	_, err := Run(nw, factory, Config{B: 8, MaxRounds: 2})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}

	received := 0
	factory2 := func() Node {
		return &FuncNode{OnRound: func(env *Env, inbox []Message) {
			received += len(inbox)
			if env.ID() == 9 && env.Round() == 1 {
				for p := 0; p < env.Degree(); p++ {
					env.SendPort(p, bitio.Uint(1, 1))
				}
			}
			if env.Round() == 2 {
				env.Halt()
			}
		}}
	}
	if _, err := Run(nw, factory2, Config{B: 8, MaxRounds: 3}); err != nil {
		t.Fatal(err)
	}
	if received != 2 {
		t.Fatalf("received %d messages", received)
	}
}

func TestDuplicateIDPanicsInStrictNetwork(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetworkWithIDs(graph.Path(2), []NodeID{1, 1})
}

func TestMaxRoundsRequired(t *testing.T) {
	nw := NewNetwork(graph.Path(2))
	if _, err := Run(nw, func() Node { return &FuncNode{} }, Config{B: 8}); err == nil {
		t.Fatal("expected error for MaxRounds=0")
	}
}

// randomTrafficNode generates pseudo-random traffic from its private RNG,
// mixing broadcasts, unicast and halts — the workload for the engine
// equivalence property test.
type randomTrafficNode struct {
	acc uint64
}

func (r *randomTrafficNode) Init(env *Env) {}

func (r *randomTrafficNode) Round(env *Env, inbox []Message) {
	for _, m := range inbox {
		rd := bitio.NewReader(m.Payload)
		v, _ := rd.ReadUint(16)
		r.acc = r.acc*31 + v + uint64(m.From)
	}
	switch env.Rand().Intn(4) {
	case 0:
		env.Broadcast(bitio.Uint(uint64(env.Rand().Intn(1<<16)), 16))
	case 1:
		if env.Degree() > 0 {
			nb := env.Neighbors()[env.Rand().Intn(env.Degree())]
			env.Send(nb, bitio.Uint(uint64(env.Rand().Intn(1<<16)), 16))
		}
	case 2:
		if r.acc%7 == 0 {
			env.Reject()
		}
	case 3:
		if env.Round() > 3 && env.Rand().Intn(3) == 0 {
			env.Halt()
		}
	}
}

// fingerprint reduces a run to a comparable summary.
func fingerprint(res *Result) string {
	var sb strings.Builder
	for _, d := range res.Decisions {
		sb.WriteString(d.String()[:1])
	}
	fmt.Fprintf(&sb, "|r=%d|bits=%d|msgs=%d|max=%d",
		res.Stats.Rounds, res.Stats.TotalBits, res.Stats.TotalMessages, res.Stats.MaxEdgeBitsRound)
	for _, m := range flatten(res.Transcript) {
		fmt.Fprintf(&sb, "|%d>%d:%s", m.From, m.To, m.Payload.String())
	}
	return sb.String()
}

func flatten(tr *Transcript) []Message {
	var out []Message
	if tr == nil {
		return nil
	}
	for _, r := range tr.Rounds {
		out = append(out, r...)
	}
	return out
}

// Property: the sequential and parallel engines produce bit-identical
// executions on random graphs with random traffic.
func TestQuickEngineEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(12, 0.3, rng)
		run := func(parallel bool) string {
			nw := NewNetwork(g)
			res, err := Run(nw, func() Node { return &randomTrafficNode{} },
				Config{B: 64, MaxRounds: 12, Seed: seed, Parallel: parallel, Workers: 4, RecordTranscript: true})
			if err != nil {
				t.Fatal(err)
			}
			return fingerprint(res)
		}
		return run(false) == run(true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: PerRoundBits sums to TotalBits and PerNodeBits sums to
// TotalBits.
func TestQuickStatsConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(10, 0.4, rng)
		nw := NewNetwork(g)
		res, err := Run(nw, func() Node { return &randomTrafficNode{} },
			Config{B: 64, MaxRounds: 8, Seed: seed})
		if err != nil {
			return false
		}
		var sumRound, sumNode int64
		for _, b := range res.Stats.PerRoundBits {
			sumRound += b
		}
		for _, b := range res.Stats.PerNodeBits {
			sumNode += b
		}
		return sumRound == res.Stats.TotalBits && sumNode == res.Stats.TotalBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkHelpers(t *testing.T) {
	g := graph.Path(3)
	nw := NewNetworkWithIDs(g, []NodeID{10, 20, 30})
	if nw.Vertex(20) != 1 || nw.Vertex(99) != -1 {
		t.Fatal("Vertex lookup broken")
	}
	if nw.MaxID() != 30 {
		t.Fatalf("MaxID %d", nw.MaxID())
	}
	if nw.IDBits() != 5 {
		t.Fatalf("IDBits %d", nw.IDBits())
	}
	nbrs := nw.NeighborIDs(1)
	if len(nbrs) != 2 || nbrs[0] != 10 || nbrs[1] != 30 {
		t.Fatalf("NeighborIDs %v", nbrs)
	}
}
