package congest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgraph/internal/bitio"
	"subgraph/internal/graph"
)

func randomOwner(n int, rng *rand.Rand) []SplitRole {
	owner := make([]SplitRole, n)
	for i := range owner {
		owner[i] = SplitRole(rng.Intn(3))
	}
	return owner
}

// Property: the split (two-player) execution reproduces the monolithic
// run exactly — same decisions, same rounds — and its shared copies never
// diverge, on random graphs, random partitions and random traffic.
func TestQuickSplitMatchesRun(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(12, 0.3, rng)
		nw := NewNetwork(g)
		owner := randomOwner(g.N(), rng)
		cfg := Config{B: 64, MaxRounds: 10, Seed: seed}

		mono, err := Run(nw, func() Node { return &randomTrafficNode{} }, cfg)
		if err != nil {
			return false
		}
		split, err := RunSplit(nw, owner, func() Node { return &randomTrafficNode{} }, cfg)
		if err != nil {
			return false
		}
		if !split.SharedConsistent {
			return false
		}
		if split.Rounds != mono.Stats.Rounds {
			return false
		}
		for v := range mono.Decisions {
			if mono.Decisions[v] != split.Decisions[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCrossingBitsExact(t *testing.T) {
	// Path 0-1-2 with Alice{0}, Shared{1}, Bob{2}: node 0's per-round
	// 8-bit message to 1 crosses (Bob simulates 1); node 2's 4-bit
	// message to 1 crosses (Alice simulates 1); node 1's replies are
	// shared-sender messages and must NOT cross.
	nw := NewNetwork(graph.Path(3))
	owner := []SplitRole{SplitAlice, SplitShared, SplitBob}
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			if env.Round() > 3 {
				env.Halt()
				return
			}
			switch env.ID() {
			case 0:
				env.Send(1, bitio.Uint(0, 8))
			case 1:
				env.Broadcast(bitio.Uint(0, 2))
			case 2:
				env.Send(1, bitio.Uint(0, 4))
			}
		}}
	}
	res, err := RunSplit(nw, owner, factory, Config{B: 16, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsExchanged != 3*(8+4) {
		t.Fatalf("bits exchanged %d want 36", res.BitsExchanged)
	}
	if !res.SharedConsistent {
		t.Fatal("shared copy diverged")
	}
}

func TestSplitAllShared(t *testing.T) {
	// Everything shared: zero communication, both players replay the
	// whole run.
	nw := NewNetwork(graph.Cycle(6))
	owner := make([]SplitRole, 6)
	for i := range owner {
		owner[i] = SplitShared
	}
	res, err := RunSplit(nw, owner, func() Node { return &floodNode{} }, Config{B: 64, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsExchanged != 0 {
		t.Fatalf("shared-only run exchanged %d bits", res.BitsExchanged)
	}
	if !res.SharedConsistent {
		t.Fatal("divergence in fully shared run")
	}
}

func TestSplitFloodAcrossCut(t *testing.T) {
	// Flooding the minimum ID works across the split: Bob holds vertex 0
	// (the minimum), Alice must still converge to accepting.
	g := graph.Cycle(8)
	nw := NewNetwork(g)
	owner := make([]SplitRole, 8)
	for i := range owner {
		if i%2 == 0 {
			owner[i] = SplitBob
		} else {
			owner[i] = SplitAlice
		}
	}
	res, err := RunSplit(nw, owner, func() Node { return &floodNode{} }, Config{B: 64, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected() {
		t.Fatal("flood rejected despite id 0 present")
	}
	if res.BitsExchanged == 0 {
		t.Fatal("alternating partition exchanged nothing")
	}
}

func TestSplitBadOwner(t *testing.T) {
	nw := NewNetwork(graph.Path(3))
	if _, err := RunSplit(nw, []SplitRole{SplitAlice}, func() Node { return &FuncNode{} }, Config{B: 8, MaxRounds: 2}); err == nil {
		t.Fatal("short owner accepted")
	}
}

// inboxHashNode folds its inbox into a rolling FNV-style hash IN ORDER —
// any permutation of the same multiset of messages yields a different
// hash — and rebroadcasts a slice of the hash, so a single out-of-order
// delivery anywhere cascades through the whole network. Its decision is a
// function of the final hash.
type inboxHashNode struct {
	acc uint64
}

func (h *inboxHashNode) Init(env *Env) { h.acc = uint64(env.ID()) + 0x9e37 }

func (h *inboxHashNode) Round(env *Env, inbox []Message) {
	for _, m := range inbox {
		h.acc = (h.acc*1099511628211 ^ uint64(m.From)<<17) + 0xcbf29ce4
		rd := bitio.NewReader(m.Payload)
		v, _ := rd.ReadUint(16)
		h.acc = h.acc*31 ^ v
	}
	if env.Round() >= 8 {
		if h.acc%3 == 0 {
			env.Reject()
		}
		env.Halt()
		return
	}
	env.Broadcast(bitio.Uint(h.acc&0xffff, 16))
}

// The split execution shares the pooled-inbox + counting-sort delivery
// with the monolithic runner since PR 3; this cross-check pins that the
// two paths deliver inboxes in the SAME order on a skewed instance where
// order mistakes amplify. The hub of the star is simulated by both
// players (shared), so the SharedConsistent verification doubles as an
// order check: if the two players staged the hub's inbox differently,
// their hub copies would hash — and emit — differently.
func TestSplitInboxOrderMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(24, 0.1, rng)
	g, _ = graph.PlantClique(g, 6, rng)
	// Attach a hub adjacent to everything: maximal degree skew.
	b := graph.NewBuilder(g.N() + 1)
	hub := g.N()
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if v < int(w) {
				b.AddEdge(v, int(w))
			}
		}
		b.AddEdge(v, hub)
	}
	sg := b.Build()
	nw := NewNetwork(sg)

	owner := make([]SplitRole, sg.N())
	for v := range owner {
		owner[v] = SplitRole(v % 2) // alternate Alice / Bob
	}
	owner[hub] = SplitShared

	cfg := Config{B: 64, MaxRounds: 12, Seed: 99}
	mono, err := Run(nw, func() Node { return &inboxHashNode{} }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunSplit(nw, owner, func() Node { return &inboxHashNode{} }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !split.SharedConsistent {
		t.Fatal("hub copies diverged: players staged the shared inbox in different orders")
	}
	if split.Rounds != mono.Stats.Rounds {
		t.Fatalf("rounds: split %d, run %d", split.Rounds, mono.Stats.Rounds)
	}
	for v := range mono.Decisions {
		if mono.Decisions[v] != split.Decisions[v] {
			t.Fatalf("vertex %d: split decided %v, run decided %v — inbox order diverged upstream",
				v, split.Decisions[v], mono.Decisions[v])
		}
	}
}
