package congest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgraph/internal/bitio"
	"subgraph/internal/graph"
)

func randomOwner(n int, rng *rand.Rand) []SplitRole {
	owner := make([]SplitRole, n)
	for i := range owner {
		owner[i] = SplitRole(rng.Intn(3))
	}
	return owner
}

// Property: the split (two-player) execution reproduces the monolithic
// run exactly — same decisions, same rounds — and its shared copies never
// diverge, on random graphs, random partitions and random traffic.
func TestQuickSplitMatchesRun(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(12, 0.3, rng)
		nw := NewNetwork(g)
		owner := randomOwner(g.N(), rng)
		cfg := Config{B: 64, MaxRounds: 10, Seed: seed}

		mono, err := Run(nw, func() Node { return &randomTrafficNode{} }, cfg)
		if err != nil {
			return false
		}
		split, err := RunSplit(nw, owner, func() Node { return &randomTrafficNode{} }, cfg)
		if err != nil {
			return false
		}
		if !split.SharedConsistent {
			return false
		}
		if split.Rounds != mono.Stats.Rounds {
			return false
		}
		for v := range mono.Decisions {
			if mono.Decisions[v] != split.Decisions[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCrossingBitsExact(t *testing.T) {
	// Path 0-1-2 with Alice{0}, Shared{1}, Bob{2}: node 0's per-round
	// 8-bit message to 1 crosses (Bob simulates 1); node 2's 4-bit
	// message to 1 crosses (Alice simulates 1); node 1's replies are
	// shared-sender messages and must NOT cross.
	nw := NewNetwork(graph.Path(3))
	owner := []SplitRole{SplitAlice, SplitShared, SplitBob}
	factory := func() Node {
		return &FuncNode{OnRound: func(env *Env, _ []Message) {
			if env.Round() > 3 {
				env.Halt()
				return
			}
			switch env.ID() {
			case 0:
				env.Send(1, bitio.Uint(0, 8))
			case 1:
				env.Broadcast(bitio.Uint(0, 2))
			case 2:
				env.Send(1, bitio.Uint(0, 4))
			}
		}}
	}
	res, err := RunSplit(nw, owner, factory, Config{B: 16, MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsExchanged != 3*(8+4) {
		t.Fatalf("bits exchanged %d want 36", res.BitsExchanged)
	}
	if !res.SharedConsistent {
		t.Fatal("shared copy diverged")
	}
}

func TestSplitAllShared(t *testing.T) {
	// Everything shared: zero communication, both players replay the
	// whole run.
	nw := NewNetwork(graph.Cycle(6))
	owner := make([]SplitRole, 6)
	for i := range owner {
		owner[i] = SplitShared
	}
	res, err := RunSplit(nw, owner, func() Node { return &floodNode{} }, Config{B: 64, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsExchanged != 0 {
		t.Fatalf("shared-only run exchanged %d bits", res.BitsExchanged)
	}
	if !res.SharedConsistent {
		t.Fatal("divergence in fully shared run")
	}
}

func TestSplitFloodAcrossCut(t *testing.T) {
	// Flooding the minimum ID works across the split: Bob holds vertex 0
	// (the minimum), Alice must still converge to accepting.
	g := graph.Cycle(8)
	nw := NewNetwork(g)
	owner := make([]SplitRole, 8)
	for i := range owner {
		if i%2 == 0 {
			owner[i] = SplitBob
		} else {
			owner[i] = SplitAlice
		}
	}
	res, err := RunSplit(nw, owner, func() Node { return &floodNode{} }, Config{B: 64, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected() {
		t.Fatal("flood rejected despite id 0 present")
	}
	if res.BitsExchanged == 0 {
		t.Fatal("alternating partition exchanged nothing")
	}
}

func TestSplitBadOwner(t *testing.T) {
	nw := NewNetwork(graph.Path(3))
	if _, err := RunSplit(nw, []SplitRole{SplitAlice}, func() Node { return &FuncNode{} }, Config{B: 8, MaxRounds: 2}); err == nil {
		t.Fatal("short owner accepted")
	}
}
