package congest

import (
	"fmt"

	"subgraph/internal/bitio"
)

// The ResilientNode decorator adds end-to-end reliability on top of an
// unreliable (fault-injected) network: every inner message is framed with
// a sequence number, acknowledged by the receiver, and retransmitted a
// bounded number of times — an α-synchronizer specialized to the
// lockstep CONGEST setting. Every framing and retransmission bit goes
// through the ordinary Env send path, so it is charged against the run's
// bandwidth B and shows up in Stats like any algorithm traffic.
//
// Timing model: each inner ("logical") round is stretched into
// Stretch() = 2·(MaxRetries+1) physical rounds, called slots. At slot 0
// of phase p the inner node executes its logical round p; its messages
// are bundled per neighbor and transmitted at the even slots 0, 2, …
// until acknowledged or the retry budget is spent. Data received during
// phase p is buffered and handed to the inner node at the start of phase
// p+1 — exactly the synchronous semantics the inner algorithm assumes,
// as long as at least one transmission of each bundle survives. The inner
// node observes logical rounds through Env.Round, so round-indexed
// algorithms (phase layouts, repetition schedules) run unchanged.
//
// Limitations: the decorator unicasts acks per edge, so it is
// incompatible with broadcast-CONGEST enforcement, and it resolves
// senders by identifier, so it does not support duplicate-ID networks.

// ResilientConfig tunes the ack/retransmit decorator. The zero value
// selects the defaults.
type ResilientConfig struct {
	// MaxRetries bounds retransmissions per bundle beyond the initial
	// transmission (default 2: up to 3 transmissions total).
	MaxRetries int
	// SeqBits is the width of the frame sequence-number field (default 4).
	// Phases are numbered mod 2^SeqBits; lockstep operation means only
	// the current phase's number is ever in flight, so small widths are
	// safe.
	SeqBits int
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.SeqBits <= 0 {
		c.SeqBits = 4
	}
	return c
}

// Stretch returns the number of physical rounds per logical round: one
// send slot plus one ack slot per transmission attempt.
func (c ResilientConfig) Stretch() int {
	d := c.withDefaults()
	return 2 * (d.MaxRetries + 1)
}

// maxBundleMsgs sizes the framing allowance in OuterB: the per-edge
// bandwidth is widened for up to this many inner messages per bundle.
// Bundles with more messages still encode correctly but may exceed the
// widened B and surface as a bandwidth violation.
const maxBundleMsgs = 4

// OuterB returns the physical per-edge bandwidth needed to carry an inner
// per-edge bandwidth of innerB plus the decorator's framing (ack flag and
// sequence number, data flag and sequence number, message count, and
// per-message length prefixes).
func (c ResilientConfig) OuterB(innerB int) int {
	d := c.withDefaults()
	header := 2 + 2*d.SeqBits + bitio.GammaLen(uint64(maxBundleMsgs)) +
		maxBundleMsgs*bitio.GammaLen(uint64(innerB))
	return innerB + header
}

// WrapResilient wraps a node factory so every node runs under the
// ack/retransmit decorator, and returns the adjusted simulator Config:
// B widened by the framing overhead (when bounded) and MaxRounds
// multiplied by the stretch, plus one extra phase to drain final
// retransmissions. The inner nodes observe the original cfg.B and logical
// round numbers.
func WrapResilient(factory func() Node, cfg Config, rcfg ResilientConfig) (func() Node, Config, error) {
	if cfg.Broadcast {
		return nil, cfg, fmt.Errorf("congest: resilient decorator is incompatible with broadcast-CONGEST (acks are unicast)")
	}
	rc := rcfg.withDefaults()
	out := cfg
	innerB := cfg.B
	if innerB > 0 {
		out.B = rc.OuterB(innerB)
	}
	out.MaxRounds = (cfg.MaxRounds + 1) * rc.Stretch()
	wrapped := func() Node {
		return &resilientNode{inner: factory(), cfg: rc, innerB: innerB}
	}
	return wrapped, out, nil
}

// resilientBundle is one phase's outgoing traffic on one port.
type resilientBundle struct {
	payload bitio.BitString // encoded data section: count + (len, bits)*
	seq     int             // phase number
	sends   int             // transmissions so far
	acked   bool
	live    bool
}

type resilientNode struct {
	inner  Node
	cfg    ResilientConfig
	innerB int

	phase   int // current logical round (1-based)
	slot    int // 0-based within the phase
	stretch int
	seqMask uint64

	pending []resilientBundle // per port
	acks    []int64           // per port: seq to ack at the next slot, -1 = none
	gotSeq  []int64           // per port: phase of the last accepted bundle, -1 = none

	curInbox    []Message // inner messages received during the current phase
	nextInbox   []Message // handed to the inner node at the next phase start
	innerHalted bool
}

func (rn *resilientNode) Init(env *Env) {
	deg := env.Degree()
	rn.stretch = rn.cfg.Stretch()
	rn.seqMask = uint64(1)<<uint(rn.cfg.SeqBits) - 1
	rn.phase = 1
	rn.pending = make([]resilientBundle, deg)
	rn.acks = make([]int64, deg)
	rn.gotSeq = make([]int64, deg)
	for i := 0; i < deg; i++ {
		rn.acks[i] = -1
		rn.gotSeq[i] = -1
	}
	saveB := env.b
	env.b = rn.innerB
	rn.inner.Init(env)
	env.b = saveB
}

func (rn *resilientNode) Round(env *Env, inbox []Message) {
	// 1. Parse arrivals — acks first applied against the previous phase's
	// bundles (an ack sent at the last slot of phase p arrives at slot 0
	// of phase p+1, before runInner replaces the bundles).
	for _, m := range inbox {
		if port := env.neighborIndex(m.From); port >= 0 {
			rn.parseFrame(port, m)
		}
	}
	// 2. Phase start: execute one logical round of the inner node.
	if rn.slot == 0 && !rn.innerHalted {
		rn.runInner(env)
	}
	// 3. Transmit acks and (re)transmissions on every port.
	for port := 0; port < env.Degree(); port++ {
		rn.transmit(env, port)
	}
	// 4. Advance the slot clock.
	rn.slot++
	if rn.slot == rn.stretch {
		rn.slot = 0
		rn.phase++
		rn.nextInbox = append(rn.nextInbox[:0], rn.curInbox...)
		rn.curInbox = rn.curInbox[:0]
		if rn.innerHalted && rn.allSettled() {
			env.Halt()
		}
	}
}

// runInner executes the wrapped node's logical round under a virtualized
// Env (logical round number, inner bandwidth, send capture) and bundles
// its output per port.
func (rn *resilientNode) runInner(env *Env) {
	saveRound, saveB := env.round, env.b
	env.round = rn.phase
	env.b = rn.innerB
	var captured []outMsg
	env.capture = &captured
	rn.inner.Round(env, rn.nextInbox)
	env.capture = nil
	env.round, env.b = saveRound, saveB
	rn.nextInbox = rn.nextInbox[:0]
	if env.halted {
		rn.innerHalted = true
		env.halted = false // drain pending retransmissions first
	}
	for i := range rn.pending {
		rn.pending[i] = resilientBundle{}
	}
	// Group captured messages per port, preserving emission order.
	counts := make([]uint64, env.Degree())
	for _, m := range captured {
		counts[m.port]++
	}
	writers := make([]*bitio.Writer, env.Degree())
	for _, m := range captured {
		w := writers[m.port]
		if w == nil {
			w = bitio.NewWriter()
			bitio.Gamma(w, counts[m.port])
			writers[m.port] = w
		}
		bitio.Gamma(w, uint64(m.msg.Payload.Len()))
		w.WriteBits(m.msg.Payload)
	}
	for port, w := range writers {
		if w != nil {
			rn.pending[port] = resilientBundle{payload: w.BitString(), seq: rn.phase, live: true}
		}
	}
}

// parseFrame decodes one physical message: [ackFlag][ackSeq?] followed by
// [dataFlag][dataSeq? count (len bits)*]. Garbled frames (bit flips) that
// fail to parse are ignored — indistinguishable from a drop, which the
// retransmission path already covers.
func (rn *resilientNode) parseFrame(port int, m Message) {
	r := bitio.NewReader(m.Payload)
	ackFlag, ok := r.ReadBit()
	if !ok {
		return
	}
	if ackFlag == 1 {
		seq, ok := r.ReadUint(rn.cfg.SeqBits)
		if !ok {
			return
		}
		b := &rn.pending[port]
		if b.live && uint64(b.seq)&rn.seqMask == seq {
			b.acked = true
		}
	}
	dataFlag, ok := r.ReadBit()
	if !ok || dataFlag == 0 {
		return
	}
	seq, ok := r.ReadUint(rn.cfg.SeqBits)
	if !ok {
		return
	}
	// Always (re-)ack observed data: our earlier ack may have been lost.
	rn.acks[port] = int64(seq)
	if seq != uint64(rn.phase)&rn.seqMask {
		return // stale or garbled sequence number
	}
	if rn.gotSeq[port] == int64(rn.phase) {
		return // duplicate of an already-accepted bundle
	}
	count, ok := bitio.GammaDecode(r)
	if !ok || count > uint64(r.Remaining())+1 {
		return
	}
	msgs := make([]Message, 0, count)
	for i := uint64(0); i < count; i++ {
		ln, ok := bitio.GammaDecode(r)
		if !ok || int(ln) > r.Remaining() {
			return
		}
		payload := m.Payload.Slice(r.Pos(), r.Pos()+int(ln))
		for j := 0; j < int(ln); j++ {
			r.ReadBit()
		}
		msgs = append(msgs, Message{From: m.From, To: m.To, Payload: payload})
	}
	rn.gotSeq[port] = int64(rn.phase)
	rn.curInbox = append(rn.curInbox, msgs...)
}

// transmit emits at most one physical message on port: a pending ack plus,
// at even slots, the current bundle if it is still unacknowledged and has
// retry budget left.
func (rn *resilientNode) transmit(env *Env, port int) {
	b := &rn.pending[port]
	sendData := b.live && !b.acked && rn.slot%2 == 0 && b.sends <= rn.cfg.MaxRetries
	sendAck := rn.acks[port] >= 0
	if !sendData && !sendAck {
		return
	}
	w := bitio.NewWriter()
	if sendAck {
		w.WriteBit(1)
		w.WriteUint(uint64(rn.acks[port]), rn.cfg.SeqBits)
		rn.acks[port] = -1
	} else {
		w.WriteBit(0)
	}
	if sendData {
		w.WriteBit(1)
		w.WriteUint(uint64(b.seq)&rn.seqMask, rn.cfg.SeqBits)
		w.WriteBits(b.payload)
		b.sends++
	} else {
		w.WriteBit(0)
	}
	env.SendPort(port, w.BitString())
}

// allSettled reports whether every bundle is delivered or exhausted and no
// acks are owed — the point at which a halted inner node lets the
// decorator halt too.
func (rn *resilientNode) allSettled() bool {
	for port := range rn.pending {
		b := &rn.pending[port]
		if b.live && !b.acked && b.sends <= rn.cfg.MaxRetries {
			return false
		}
		if rn.acks[port] >= 0 {
			return false
		}
	}
	return true
}
