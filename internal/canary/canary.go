// Package canary is the runtime correctness oracle for the subgraphd
// daemon: it asynchronously re-runs a seeded sample of completed
// production jobs through the *other* simulator engine (sequential ↔
// parallel — property-tested byte-identical, so any divergence is a bug)
// and, for small fault-free instances, against the centralized VF2
// ground truth. A divergence raises an alarm counter in the obs registry
// and writes a shrunk, replayable repro artifact in the diffcheck
// format, so a production miscomputation arrives on an engineer's desk
// as a minimal `diffcheck -replay` case instead of a vague bug report.
//
// The canary rides the serve layer's Config.OnJobDone tap. Sampling and
// the handoff are non-blocking: when the canary falls behind, jobs are
// dropped (and counted), never delaying the serving path.
package canary

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"subgraph"
	"subgraph/internal/diffcheck"
	"subgraph/internal/obs"
	"subgraph/internal/serve"
)

// Metric names exported through the canary's obs.Registry.
const (
	MetricSampled      = "canary_jobs_sampled_total"
	MetricChecked      = "canary_jobs_checked_total"
	MetricDropped      = "canary_jobs_dropped_total" // sampled but queue full
	MetricDivergence   = "canary_divergence_total"   // the alarm
	MetricInconclusive = "canary_inconclusive_total" // replay aborted (deadline)
	MetricVF2Checked   = "canary_vf2_checked_total"
	GaugePending       = "canary_pending"
)

// Config tunes a Canary. Zero fields take the documented defaults.
type Config struct {
	// Fraction of completed jobs to replay, in [0,1] (1 = every job).
	Fraction float64
	// Seed drives the sampling decisions deterministically.
	Seed int64
	// QueueDepth bounds the pending-replay queue; a full queue drops
	// (and counts) instead of blocking the serving path (default 64).
	QueueDepth int
	// VF2MaxN caps the instance size checked against exhaustive VF2
	// containment (default 256; 0 < n ≤ cap and fault-free required).
	VF2MaxN int
	// ArtifactDir receives divergence repro artifacts (default ".").
	ArtifactDir string
	// ShrinkBudget bounds oracle evaluations when minimizing a
	// divergent case (default 120).
	ShrinkBudget int
	// Registry receives the canary's metrics; a fresh one is created
	// when nil. Sharing the daemon's registry puts canary alarms on the
	// same /metrics surface as everything else.
	Registry *obs.Registry
	// Logger receives the canary's structured log stream (divergence
	// alarms with job_id/trace_id/digest attrs, artifact outcomes). Nil
	// discards.
	Logger *slog.Logger

	// TamperSecond, when non-nil, mutates the second engine's report
	// before comparison — the test-only corrupted-engine hook used to
	// prove the alarm path end to end. Never set in production.
	TamperSecond func(*subgraph.Report)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.VF2MaxN <= 0 {
		c.VF2MaxN = 256
	}
	if c.ArtifactDir == "" {
		c.ArtifactDir = "."
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 120
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Canary replays sampled jobs on a single background worker.
type Canary struct {
	cfg Config
	reg *obs.Registry

	mu     sync.Mutex
	rng    *rand.Rand
	closed bool
	ch     chan serve.JobDone

	wg sync.WaitGroup
}

// New builds and starts a canary.
func New(cfg Config) *Canary {
	cfg = cfg.withDefaults()
	c := &Canary{
		cfg: cfg,
		reg: cfg.Registry,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		ch:  make(chan serve.JobDone, cfg.QueueDepth),
	}
	for _, name := range []string{
		MetricSampled, MetricChecked, MetricDropped,
		MetricDivergence, MetricInconclusive, MetricVF2Checked,
	} {
		c.reg.Counter(name)
	}
	c.reg.Gauge(GaugePending)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for jd := range c.ch {
			c.check(jd)
			c.reg.Gauge(GaugePending).Set(float64(len(c.ch)))
		}
	}()
	return c
}

// OnJobDone is the serve.Config.OnJobDone tap: sample, then hand off
// without ever blocking the worker that completed the job.
func (c *Canary) OnJobDone(jd serve.JobDone) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.rng.Float64() >= c.cfg.Fraction {
		return
	}
	c.reg.Counter(MetricSampled).Inc()
	select {
	case c.ch <- jd:
		c.reg.Gauge(GaugePending).Set(float64(len(c.ch)))
	default:
		c.reg.Counter(MetricDropped).Inc()
	}
}

// Drain stops accepting jobs and waits for the pending queue to be
// checked, or ctx to expire.
func (c *Canary) Drain(ctx context.Context) error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("canary: drain interrupted: %w", context.Cause(ctx))
	}
}

// Divergences returns the alarm count.
func (c *Canary) Divergences() int64 { return c.reg.Counter(MetricDivergence).Value() }

// check replays one job and raises the alarm on any divergence.
func (c *Canary) check(jd serve.JobDone) {
	c.reg.Counter(MetricChecked).Inc()
	h, err := subgraph.ParsePattern(jd.Pattern)
	if err != nil {
		c.reg.Counter(MetricInconclusive).Inc()
		return
	}
	opts, err := jd.Options.Options()
	if err != nil {
		c.reg.Counter(MetricInconclusive).Inc()
		return
	}
	// The second engine: the same deterministic contract, the other
	// scheduler. Running on the shared production Network is safe —
	// concurrent Runs are part of the simulator's documented contract.
	opts.Parallel = !opts.Parallel
	rep2, err := subgraph.Detect(jd.Network, h, opts)
	if rep2 != nil && c.cfg.TamperSecond != nil {
		c.cfg.TamperSecond(rep2)
	}
	if err != nil {
		// The replay aborted (deadline under load) while the primary
		// completed: no verdict either way.
		c.reg.Counter(MetricInconclusive).Inc()
		return
	}
	if detail := diffRecorded(jd.Result, rep2); detail != "" {
		c.raise(jd, "engine-equality", detail)
		return
	}

	// VF2 ground truth for small fault-free instances: the production
	// answer itself is checked, not just engine agreement.
	g := jd.Network.G
	if faultFree(jd.Options) && g.N() <= c.cfg.VF2MaxN {
		c.reg.Counter(MetricVF2Checked).Inc()
		truth := subgraph.ContainsSubgraph(h, g)
		res := jd.Result
		switch {
		case diffcheck.ExactAlgorithm(res.Algorithm) && res.Detected != truth:
			c.raise(jd, "ground-truth", fmt.Sprintf(
				"exact detector %s reported detected=%v but VF2 containment is %v",
				res.Algorithm, res.Detected, truth))
		case res.Detected && !truth:
			c.raise(jd, "ground-truth", fmt.Sprintf(
				"one-sided detector %s reported a copy of %s but VF2 finds none",
				res.Algorithm, jd.Pattern))
		}
	}
}

// faultFree reports whether the job's effective fault plan is empty.
func faultFree(spec subgraph.OptionsSpec) bool {
	return spec.Faults == nil || spec.Faults.Plan() == nil
}

// diffRecorded compares a recorded production result against a fresh
// report. Stats compare by JSON bytes — the daemon's stored encoding.
// RunReport wall-clock fields are deliberately excluded: they describe
// real time, not the computation.
func diffRecorded(res *serve.JobResult, rep *subgraph.Report) string {
	switch {
	case rep == nil:
		return "replay produced a nil report"
	case res.Detected != rep.Detected:
		return fmt.Sprintf("detected %v (production) vs %v (replay)", res.Detected, rep.Detected)
	case res.Algorithm != rep.Algorithm:
		return fmt.Sprintf("algorithm %q vs %q", res.Algorithm, rep.Algorithm)
	case res.Rounds != rep.Rounds:
		return fmt.Sprintf("rounds %d vs %d", res.Rounds, rep.Rounds)
	case res.BandwidthBits != rep.BandwidthBits:
		return fmt.Sprintf("bandwidth %d vs %d", res.BandwidthBits, rep.BandwidthBits)
	}
	stats2, err := json.Marshal(rep.Stats)
	if err != nil {
		return "encoding replay stats: " + err.Error()
	}
	if !bytes.Equal(res.Stats, stats2) {
		return fmt.Sprintf("stats JSON differs:\n  production: %s\n  replay:     %s", res.Stats, stats2)
	}
	return ""
}

// raise counts the alarm and writes the shrunk repro artifact.
func (c *Canary) raise(jd serve.JobDone, oracle, detail string) {
	c.reg.Counter(MetricDivergence).Inc()
	c.cfg.Logger.Error("canary divergence",
		"job_id", jd.ID, "trace_id", jd.TraceID, "digest", jd.Digest,
		"pattern", jd.Pattern, "oracle", oracle, "detail", detail)

	cs := &diffcheck.Case{
		Name:    "canary:" + jd.ID,
		Seed:    jd.Options.Seed,
		N:       jd.Network.G.N(),
		Edges:   jd.Network.G.Edges(),
		Pattern: jd.Pattern,
		Options: jd.Options,
	}
	// The deadline shaped admission, not the computation (the result was
	// complete); dropping it makes the artifact load-independent.
	cs.Options.DeadlineMs = 0

	shrunk, evals := diffcheck.Shrink(cs, c.stillFails(oracle), c.cfg.ShrinkBudget)
	art := &diffcheck.Artifact{
		Version: 1,
		Oracle:  oracle,
		Detail:  detail,
		Case:    *shrunk,
		Shrunk:  shrunk.N != cs.N || len(shrunk.Edges) != len(cs.Edges),
	}
	if art.Shrunk {
		art.OriginalN, art.OriginalEdges = cs.N, len(cs.Edges)
	}
	if err := os.MkdirAll(c.cfg.ArtifactDir, 0o755); err != nil {
		c.cfg.Logger.Warn("canary artifact dir", "job_id", jd.ID, "err", err)
		return
	}
	path := filepath.Join(c.cfg.ArtifactDir, fmt.Sprintf("canary-%s-%s.json", oracle, jd.ID))
	if err := diffcheck.WriteArtifact(path, art); err != nil {
		c.cfg.Logger.Warn("canary artifact write", "job_id", jd.ID, "err", err)
		return
	}
	c.cfg.Logger.Info("canary repro artifact written",
		"job_id", jd.ID, "trace_id", jd.TraceID, "path", path,
		"shrink_evals", evals, "n", shrunk.N, "m", len(shrunk.Edges))
}

// stillFails builds the shrink predicate for the named oracle: a
// candidate still fails when a fresh primary run diverges the same way
// (from a fresh tampered second run, or from VF2).
func (c *Canary) stillFails(oracle string) func(*diffcheck.Case) bool {
	return func(k *diffcheck.Case) bool {
		g, err := k.Graph()
		if err != nil {
			return false
		}
		h, err := k.PatternGraph()
		if err != nil {
			return false
		}
		opts, err := k.DetectOptions()
		if err != nil {
			return false
		}
		nw := subgraph.NewNetwork(g)
		rep1, err1 := subgraph.Detect(nw, h, opts)
		if err1 != nil || rep1 == nil {
			return false
		}
		switch oracle {
		case "engine-equality":
			o2 := opts
			o2.Parallel = !o2.Parallel
			rep2, err2 := subgraph.Detect(nw, h, o2)
			if err2 != nil || rep2 == nil {
				return false
			}
			if c.cfg.TamperSecond != nil {
				c.cfg.TamperSecond(rep2)
			}
			return diffFresh(rep1, rep2) != ""
		case "ground-truth":
			truth := subgraph.ContainsSubgraph(h, g)
			if diffcheck.ExactAlgorithm(rep1.Algorithm) {
				return rep1.Detected != truth
			}
			return rep1.Detected && !truth
		}
		return false
	}
}

// diffFresh compares two fresh reports the same way diffRecorded
// compares against the stored result.
func diffFresh(a, b *subgraph.Report) string {
	ja, err := json.Marshal(a.Stats)
	if err != nil {
		return "encoding stats: " + err.Error()
	}
	return diffRecorded(&serve.JobResult{
		Detected:      a.Detected,
		Algorithm:     a.Algorithm,
		Rounds:        a.Rounds,
		BandwidthBits: a.BandwidthBits,
		Stats:         ja,
	}, b)
}
