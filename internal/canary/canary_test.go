package canary

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"subgraph"
	"subgraph/internal/diffcheck"
	"subgraph/internal/graph"
	"subgraph/internal/obs"
	"subgraph/internal/serve"
)

// testWriter routes slog output through t.Logf so canary log lines land
// in the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// startCanaried boots an in-process daemon with a canary on its
// OnJobDone tap, sharing one registry.
func startCanaried(t *testing.T, ccfg Config) (*serve.InProcess, *Canary, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	ccfg.Registry = reg
	ccfg.Logger = slog.New(slog.NewTextHandler(testWriter{t}, nil))
	if ccfg.Seed == 0 {
		ccfg.Seed = 1
	}
	cn := New(ccfg)
	p, err := serve.StartInProcess(serve.Config{
		Workers:  2,
		Registry: reg,
		// Cache off: every submission must execute (and so reach the tap).
		CacheSize: -1,
		OnJobDone: cn.OnJobDone,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := p.Close(0); err != nil {
			t.Errorf("closing daemon: %v", err)
		}
	})
	return p, cn, reg
}

// uploadTriangleGraph stores a small graph with a planted triangle.
func uploadTriangleGraph(t *testing.T, c *serve.Client, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _ := subgraph.PlantClique(subgraph.GNP(24, 0.08, rng), 3, rng)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	up, err := c.UploadGraph(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	return up.Digest
}

func runJobs(t *testing.T, c *serve.Client, digest string, n int) {
	t.Helper()
	for seed := int64(1); seed <= int64(n); seed++ {
		jv, status, err := c.SubmitJob(serve.JobSpec{
			Graph: digest, Pattern: "triangle",
			Options: subgraph.OptionsSpec{Seed: seed},
		})
		if err != nil || status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("seed %d: (%d, %v)", seed, status, err)
		}
		if _, err := c.WaitJob(jv.ID, 30*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func drain(t *testing.T, cn *Canary) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cn.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCanaryCleanRun pins the healthy path: full-fraction replay of real
// jobs raises no alarms, and small fault-free instances also get the
// VF2 ground-truth check.
func TestCanaryCleanRun(t *testing.T) {
	p, cn, reg := startCanaried(t, Config{Fraction: 1, ArtifactDir: t.TempDir()})
	digest := uploadTriangleGraph(t, p.Client, 5)
	runJobs(t, p.Client, digest, 5)
	drain(t, cn)

	if n := reg.Counter(MetricChecked).Value(); n != 5 {
		t.Fatalf("checked %d jobs, want 5", n)
	}
	if n := reg.Counter(MetricVF2Checked).Value(); n != 5 {
		t.Fatalf("VF2-checked %d jobs, want 5 (small fault-free instances)", n)
	}
	if n := cn.Divergences(); n != 0 {
		t.Fatalf("%d divergences on a healthy engine", n)
	}
}

// TestCanaryZeroFraction pins that sampling respects the fraction.
func TestCanaryZeroFraction(t *testing.T) {
	p, cn, reg := startCanaried(t, Config{Fraction: 0, ArtifactDir: t.TempDir()})
	digest := uploadTriangleGraph(t, p.Client, 6)
	runJobs(t, p.Client, digest, 3)
	drain(t, cn)
	if n := reg.Counter(MetricSampled).Value(); n != 0 {
		t.Fatalf("sampled %d jobs at fraction 0", n)
	}
}

// TestCanaryTamperedEngine is the acceptance path: a corrupted second
// engine (test-only hook) must raise the alarm and write a shrunk
// artifact that replays under the diffcheck harness.
func TestCanaryTamperedEngine(t *testing.T) {
	dir := t.TempDir()
	p, cn, reg := startCanaried(t, Config{
		Fraction:    1,
		ArtifactDir: dir,
		// The corrupted engine: every replay flips the answer.
		TamperSecond: func(rep *subgraph.Report) { rep.Detected = !rep.Detected },
	})
	digest := uploadTriangleGraph(t, p.Client, 7)
	runJobs(t, p.Client, digest, 1)
	drain(t, cn)

	if n := cn.Divergences(); n != 1 {
		t.Fatalf("divergences = %d, want 1 from the tampered engine", n)
	}
	if n := reg.Counter(MetricDivergence).Value(); n != 1 {
		t.Fatalf("alarm counter = %d, want 1", n)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var path string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "canary-engine-equality-") {
			path = filepath.Join(dir, e.Name())
		}
	}
	if path == "" {
		t.Fatalf("no engine-equality artifact in %s (found %v)", dir, ents)
	}
	art, err := diffcheck.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if art.Oracle != "engine-equality" {
		t.Fatalf("artifact oracle = %q", art.Oracle)
	}
	// The tamper hook fails every candidate identically, so the shrinker
	// must have ground the case down hard.
	if art.Case.N >= 24 {
		t.Fatalf("artifact case not shrunk: n = %d (original 24)", art.Case.N)
	}
	// The artifact replays under the harness. The recorded divergence was
	// an artifact of the tampered engine, so an untampered replay runs
	// clean — what matters is that the document is a valid, executable
	// diffcheck case.
	if err := diffcheck.Replay(path); err != nil {
		t.Fatalf("artifact does not replay: %v", err)
	}
}

// TestCanaryDropsWhenBehind pins the non-blocking contract: a full
// canary queue drops samples instead of stalling the tap.
func TestCanaryDropsWhenBehind(t *testing.T) {
	reg := obs.NewRegistry()
	cn := New(Config{Fraction: 1, QueueDepth: 1, Registry: reg, Seed: 1})
	// Saturate the queue with taps faster than the worker drains: use a
	// job the worker will chew on (large-ish graph), then overflow.
	rng := rand.New(rand.NewSource(9))
	g, _ := subgraph.PlantClique(subgraph.GNP(60, 0.1, rng), 3, rng)
	nw := subgraph.NewNetwork(g)
	h, err := subgraph.ParsePattern("triangle")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := subgraph.Detect(nw, h, subgraph.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := json.Marshal(rep.Stats)
	if err != nil {
		t.Fatal(err)
	}
	jd := serve.JobDone{
		ID: "j-000001", Digest: "x", Pattern: "triangle", Network: nw,
		Options: subgraph.OptionsSpec{Seed: 1},
		Result: &serve.JobResult{Detected: rep.Detected, Algorithm: rep.Algorithm,
			Rounds: rep.Rounds, BandwidthBits: rep.BandwidthBits, Stats: stats},
	}
	for i := 0; i < 50; i++ {
		cn.OnJobDone(jd)
	}
	drain(t, cn)
	sampled := reg.Counter(MetricSampled).Value()
	dropped := reg.Counter(MetricDropped).Value()
	checked := reg.Counter(MetricChecked).Value()
	if sampled != 50 {
		t.Fatalf("sampled = %d, want 50", sampled)
	}
	if checked+dropped != sampled || dropped == 0 {
		t.Fatalf("checked %d + dropped %d != sampled %d (or nothing dropped)", checked, dropped, sampled)
	}
	if n := cn.Divergences(); n != 0 {
		t.Fatalf("%d divergences replaying an honest result", n)
	}
}
