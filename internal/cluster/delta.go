package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"

	"subgraph/internal/graph"
	"subgraph/internal/kernel"
	"subgraph/internal/serve"
)

// Evolving graphs, cluster edition. A delta must be applied by a worker
// that holds the *parent* graph — that worker validates the batch against
// the stored edge set and maintains its own incremental caches — so the
// router routes the request to the parent digest's owners (healing an
// amnesiac owner from the mirror, same as the job path). The successor
// graph then lives under a new digest with, in general, a *different*
// owner set, so after the worker answers, the router:
//
//   - applies the same delta to its mirrored parent (content addressing
//     guarantees the same child), recording lineage in the mirror;
//   - pushes the child to the child digest's owners, so the first job on
//     the successor finds it warm instead of eating a 404/push round-trip;
//   - seeds the cluster-shared result cache along lineage: count-mode
//     entries cached for the parent are re-derived for the child by
//     incremental recounting over the touched vertices, byte-identical
//     to what a worker computing the child from scratch would return.
//
// Seeding respects the worker's own churn verdict (DeltaView.Incremental):
// an over-threshold delta seeds nothing and the child's first count job
// recomputes on a worker.

// handleGraphDelta routes POST /v1/graphs/{digest}/delta.
func (r *Router) handleGraphDelta(w http.ResponseWriter, req *http.Request) {
	if r.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "cluster is draining; submit elsewhere")
		return
	}
	parentDigest := req.PathValue("digest")
	// Pin the mirrored parent across the round-trip: upload churn must not
	// evict the graph the mirror-side apply and the heal path both need.
	if !r.store.Pin(parentDigest) {
		writeErr(w, http.StatusNotFound,
			"unknown graph digest %q: the parent is not mirrored here; re-upload the base graph and resubmit the delta",
			parentDigest)
		return
	}
	defer r.store.Unpin(parentDigest)
	parent, _ := r.store.Get(parentDigest)

	payload, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxUploadBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "reading delta: %v", err)
		return
	}
	// Decode locally too — the router needs the edge lists to update its
	// mirror, and a malformed body should bounce here, not burn a forward.
	var dreq serve.DeltaRequest
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dreq); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding delta: %v", err)
		return
	}

	status, body, applier := r.forwardDelta(req.Context(), parentDigest, payload)
	if applier == nil {
		// No owner could be reached (or validation failed): relay whatever
		// terminal verdict we have. Worker validation is deterministic in
		// (parent, delta), so a 4xx from one owner is the cluster's answer.
		if body != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write(body)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "no live worker could apply the delta; retry later")
		return
	}

	var dv serve.DeltaView
	if err := json.Unmarshal(body, &dv); err != nil {
		writeErr(w, http.StatusBadGateway, "decoding worker delta response: %v", err)
		return
	}
	r.reg.Counter(MetricGraphDeltas).Inc()

	if dv.Digest != parentDigest {
		// Real successor: mirror it, replicate it to its owners, seed the
		// shared cache. The mirror apply cannot disagree with the worker's —
		// both applied the same delta to the same content-addressed parent.
		res, aerr := graph.ApplyDelta(parent, graph.EdgeDelta{Insert: dreq.Insert, Delete: dreq.Delete})
		if aerr != nil {
			r.logger.Warn("mirror delta apply diverged from worker verdict",
				"parent", parentDigest, "err", aerr)
		} else {
			childDigest, _ := r.store.PutChild(res.Graph, parentDigest)
			if childDigest != dv.Digest {
				r.logger.Warn("mirror child digest disagrees with worker",
					"mirror", childDigest, "worker", dv.Digest)
			}
			r.replicateChild(req.Context(), childDigest, applier.base)
			if dv.Incremental {
				r.seedLineageCache(parent, res.Graph, parentDigest, childDigest, res.Touched)
			}
		}
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// forwardDelta walks the parent digest's live owners (rotated) until one
// applies the delta. A 404 means the owner lost the parent — heal it from
// the mirror and retry the same owner once. Connection errors mark the
// member down; 503 marks it draining; any other status is a terminal
// verdict relayed to the client as-is. Returns the worker's status and
// raw response body, plus the member that applied it (nil when none did).
func (r *Router) forwardDelta(ctx context.Context, parentDigest string, payload []byte) (int, []byte, *member) {
	order := r.routeOrder(parentDigest, "")
	if len(order) == 0 {
		return 0, nil, nil
	}
	start := int(r.rotor.Add(1)) % len(order)
	for i := 0; i < len(order); i++ {
		m := order[(start+i)%len(order)]
		fctx, cancel := context.WithTimeout(ctx, r.cfg.ForwardTimeout)
		status, body, err := r.postDelta(fctx, m, parentDigest, payload)
		if status == http.StatusNotFound {
			if perr := r.pushGraph(fctx, m, parentDigest); perr == nil {
				status, body, err = r.postDelta(fctx, m, parentDigest, payload)
			}
		}
		cancel()
		switch {
		case status == http.StatusCreated || status == http.StatusOK:
			return status, body, m
		case status == 0:
			r.markDown(m)
			r.logger.Warn("delta forward failed", "member", m.displayName(), "err", err)
		case status == http.StatusServiceUnavailable:
			m.draining.Store(true)
		default:
			return status, body, nil
		}
	}
	return 0, nil, nil
}

// postDelta sends the raw delta payload to one worker and returns the
// response verbatim — the router relays worker delta responses (success
// views and typed validation errors alike) byte for byte.
func (r *Router) postDelta(ctx context.Context, m *member, digest string, payload []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		m.base+"/v1/graphs/"+digest+"/delta", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.ForwardedByHeader, r.cfg.NodeName)
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// replicateChild pushes a freshly mirrored successor graph to its owners,
// skipping the worker that applied the delta (it already stored the
// child). Push failures are tolerated — the job forward path heals
// lazily, same as uploads.
func (r *Router) replicateChild(ctx context.Context, childDigest, applierBase string) {
	var wg sync.WaitGroup
	for _, m := range r.routeOrder(childDigest, applierBase) {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, r.cfg.ForwardTimeout)
			defer cancel()
			if err := r.pushGraph(pctx, m, childDigest); err != nil {
				r.logger.Warn("child graph push failed",
					"member", m.displayName(), "digest", childDigest, "err", err)
			}
		}(m)
	}
	wg.Wait()
}

// seedLineageCache forwards the parent's count-mode entries in the
// cluster-shared cache to the child by incremental recounting, so a count
// job on the successor answers at the router without touching the fleet.
// Keys go through serve.SpecCacheKey — the same derivation workers use —
// and the seeded envelopes are byte-identical to worker-computed results.
func (r *Router) seedLineageCache(parent, child *graph.Graph, parentDigest, childDigest string, touched []int32) {
	var pb, cb *graph.BitAdjacency
	seeded := 0
	for size := 2; size <= kernel.MaxCliqueSize; size++ {
		pattern := "clique:" + strconv.Itoa(size)
		pkey, err := serve.SpecCacheKey(serve.JobSpec{Graph: parentDigest, Pattern: pattern, Mode: serve.ModeCount})
		if err != nil {
			continue
		}
		res, ok := r.cache.Get(pkey)
		if !ok || res.Count == nil {
			continue
		}
		if pb == nil {
			pb, cb = graph.NewBitAdjacency(parent), graph.NewBitAdjacency(child)
		}
		cnt := r.krn.CountDelta(parent, pb, child, cb, size, touched, *res.Count)
		ckey, err := serve.SpecCacheKey(serve.JobSpec{Graph: childDigest, Pattern: pattern, Mode: serve.ModeCount})
		if err != nil {
			continue
		}
		r.cache.Put(ckey, serve.CountResult(cnt, cb.Mode()))
		seeded++
	}
	if seeded > 0 {
		r.reg.Counter(MetricDeltaSeeded).Add(int64(seeded))
	}
}
