// Package cluster scales subgraphd past one process: a router that
// consistent-hashes jobs on their graph digest across a fleet of worker
// subgraphd nodes, replicates hot graphs N ways, holds the cluster's
// shared result cache, applies cluster-wide admission control, and
// re-dispatches jobs off crashed workers.
//
// The routing scheme is the system-level analogue of the partitioned
// enumeration in the distributed subgraph-detection literature this repo
// reproduces: work assignment is a deterministic function of content
// (the graph digest), so any router — and any test — computes the same
// owner set with no coordination. The content-addressed store and
// canonical cache keys from the serve layer are what make this sound:
// results are location-independent, so a job can run on any replica and
// a cache hit on any node is a hit everywhere.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Owners ranks members for a digest by rendezvous (highest-random-weight)
// hashing and returns the top r as the digest's replica set, primary
// first. Properties the router leans on:
//
//   - deterministic across processes (FNV-64a of digest|member), so a
//     restarted router re-derives the same assignment;
//   - minimal disruption: removing a member only moves the digests it
//     owned, never reshuffles the rest (the HRW property that makes a
//     static member list workable without a rebalancing protocol);
//   - replica sets are distinct members by construction.
//
// r is clamped to [1, len(members)]; an empty member list returns nil.
func Owners(members []string, digest string, r int) []string {
	if len(members) == 0 {
		return nil
	}
	if r < 1 {
		r = 1
	}
	if r > len(members) {
		r = len(members)
	}
	type scored struct {
		member string
		score  uint64
	}
	ranked := make([]scored, 0, len(members))
	for _, m := range members {
		h := fnv.New64a()
		_, _ = h.Write([]byte(digest))
		_, _ = h.Write([]byte{'|'})
		_, _ = h.Write([]byte(m))
		ranked = append(ranked, scored{member: m, score: mix64(h.Sum64())})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].member < ranked[j].member // total order even on hash ties
	})
	out := make([]string, r)
	for i := range out {
		out[i] = ranked[i].member
	}
	return out
}

// mix64 is the splitmix64 finalizer. FNV alone avalanches its last few
// input bytes poorly, and the member name is exactly the last few bytes
// — without this, short member lists with similar names skew badly.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
