package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"subgraph/internal/serve"
)

// InProcess is a live cluster on loopback ports: N worker daemons plus a
// router fronting them, with a typed client pointed at the router. It is
// the harness behind the cluster tests, the node-crash diffcheck oracle,
// and `subgraphd -loadgen -cluster N` — the same topology a production
// deployment runs, minus the machines.
type InProcess struct {
	// Router is the fronting router (prober started).
	Router *Router
	// Client targets the router.
	Client *serve.Client
	// BaseURL is the router's root.
	BaseURL string
	// Workers are the member daemons, index-aligned with the router's
	// member list (worker i is named "w<i>").
	Workers []*serve.InProcess

	hs *http.Server
	ln net.Listener
}

// StartInProcess boots nWorkers worker daemons (each from workerCfg,
// with NodeName w0..w<n-1> and its own Registry) and a router over them
// from routerCfg (Members is filled in; any preset value is ignored).
func StartInProcess(nWorkers int, workerCfg serve.Config, routerCfg Config) (*InProcess, error) {
	if nWorkers < 1 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", nWorkers)
	}
	c := &InProcess{}
	for i := 0; i < nWorkers; i++ {
		wc := workerCfg
		wc.NodeName = fmt.Sprintf("w%d", i)
		// Registries must not be shared across nodes: each worker's
		// /metrics page is scraped and summed by the router.
		wc.Registry = nil
		w, err := serve.StartInProcess(wc)
		if err != nil {
			c.Close(0)
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}
	members := make([]string, nWorkers)
	for i, w := range c.Workers {
		members[i] = w.BaseURL
	}
	routerCfg.Members = members
	rt, err := New(routerCfg)
	if err != nil {
		c.Close(0)
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close(0)
		return nil, fmt.Errorf("cluster: in-process listener: %w", err)
	}
	hs := &http.Server{Handler: rt.Handler()}
	go func() { _ = hs.Serve(ln) }()
	rt.Start()
	c.Router = rt
	c.BaseURL = "http://" + ln.Addr().String()
	c.Client = &serve.Client{Base: c.BaseURL}
	c.hs = hs
	c.ln = ln
	return c, nil
}

// KillWorker hard-crashes worker i (no drain; its in-flight jobs are
// lost from the router's point of view). The router discovers the death
// on its next probe, forward, or poll and re-routes.
func (c *InProcess) KillWorker(i int) error {
	if i < 0 || i >= len(c.Workers) {
		return fmt.Errorf("cluster: no worker %d", i)
	}
	return c.Workers[i].Kill()
}

// Close drains the router (resolving every admitted job), then the
// workers, then shuts all listeners down. timeout 0 means 30s total.
func (c *InProcess) Close(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var first error
	if c.Router != nil {
		if err := c.Router.Drain(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, w := range c.Workers {
		if err := w.Close(timeout); err != nil && first == nil {
			first = err
		}
	}
	if c.hs != nil {
		if err := c.hs.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}
