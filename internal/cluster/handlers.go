package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"subgraph/internal/graph"
	"subgraph/internal/obs"
	"subgraph/internal/serve"
)

// Handler returns the router's HTTP surface. It mirrors a worker's
// surface path for path, so serve.Client — and every tool built on it
// (loadgen, the CLI, diffcheck) — points at a router unchanged and gets
// cluster semantics.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.handleHealth)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("POST /v1/graphs", r.handleGraphUpload)
	mux.HandleFunc("GET /v1/graphs", r.handleGraphList)
	mux.HandleFunc("GET /v1/graphs/{digest}", r.handleGraphInfo)
	mux.HandleFunc("GET /v1/graphs/{digest}/edgelist", r.handleGraphDownload)
	mux.HandleFunc("POST /v1/graphs/{digest}/delta", r.handleGraphDelta)
	mux.HandleFunc("POST /v1/jobs", r.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", r.handleJobTrace)
	mux.HandleFunc("GET /debug/jobs", r.handleDebugJobs)
	mux.HandleFunc("GET /debug/jobs/{id}", r.handleDebugJob)
	mux.HandleFunc("GET /debug/slo", r.handleDebugSLO)
	mux.HandleFunc("GET /debug/cluster", r.handleDebugCluster)
	return mux
}

// writeJSON emits compact JSON — same rationale as the serve layer: an
// indenting encoder would reformat the raw Stats bytes inside relayed
// results and break their byte-identity with library output.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	v := serve.HealthView{
		Status: "ok",
		Role:   RoleRouter,
		Node:   r.cfg.NodeName,
		Shards: r.store.Len(),
	}
	if r.Draining() {
		v.Status, v.Draining = "draining", true
		writeJSON(w, http.StatusServiceUnavailable, v)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "prom" {
		// The prom page is router-local (scrapers collect workers
		// directly, each labeled with its own node name); the JSON view
		// below is the aggregated one.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheusLabeled(w, r.reg.Snapshot(),
			map[string]string{"node": r.cfg.NodeName})
		return
	}
	writeJSON(w, http.StatusOK, r.clusterMetrics(req.Context()))
}

// parseUpload parses untrusted edge-list text under the router's
// limits, mapping parse errors to 400 and limit errors to 413.
func (r *Router) parseUpload(text string) (*graph.Graph, *routeErr) {
	g, err := graph.ReadEdgeListLimits(strings.NewReader(text), r.cfg.GraphLimits)
	if err != nil {
		var le *graph.LimitError
		if errors.As(err, &le) {
			return nil, &routeErr{status: http.StatusRequestEntityTooLarge, msg: le.Error()}
		}
		return nil, &routeErr{status: http.StatusBadRequest, msg: err.Error()}
	}
	return g, nil
}

// routeErr is a client-visible error with its HTTP status.
type routeErr struct {
	status int
	msg    string
}

// handleGraphUpload stores the graph in the router mirror and fans it
// out to the digest's owners while the client waits — a job submitted
// right after its upload must not eat a 404/push round-trip per owner.
// Push failures are tolerated: the forward path re-pushes lazily.
func (r *Router) handleGraphUpload(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxUploadBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "reading upload: %v", err)
		return
	}
	g, aerr := r.parseUpload(string(body))
	if aerr != nil {
		writeErr(w, aerr.status, "%s", aerr.msg)
		return
	}
	digest, deduped := r.store.Put(g)
	r.reg.Counter(MetricGraphUploads).Inc()
	var wg sync.WaitGroup
	for _, m := range r.routeOrder(digest, "") {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ForwardTimeout)
			defer cancel()
			if err := r.pushGraph(ctx, m, digest); err != nil {
				r.logger.Warn("graph push failed",
					"member", m.displayName(), "digest", digest, "err", err)
			}
		}(m)
	}
	wg.Wait()
	info, _ := r.store.Info(digest)
	status := http.StatusCreated
	if deduped {
		status = http.StatusOK
	}
	writeJSON(w, status, serve.UploadView{GraphInfo: info, Deduped: deduped})
}

func (r *Router) handleGraphList(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": r.store.List()})
}

func (r *Router) handleGraphInfo(w http.ResponseWriter, req *http.Request) {
	info, ok := r.store.Info(req.PathValue("digest"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph digest %q", req.PathValue("digest"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (r *Router) handleGraphDownload(w http.ResponseWriter, req *http.Request) {
	g, ok := r.store.Get(req.PathValue("digest"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph digest %q", req.PathValue("digest"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = graph.WriteEdgeList(w, g)
}

// handleJobTrace proxies a traced job's JSONL stream from the worker
// that executed it.
func (r *Router) handleJobTrace(w http.ResponseWriter, req *http.Request) {
	cj := r.jobByID(req.PathValue("id"))
	if cj == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", req.PathValue("id"))
		return
	}
	node, workerID := cj.assignment()
	if node == "" || workerID == "" {
		writeErr(w, http.StatusNotFound, "job %s has no trace (submit with \"trace\": true)", cj.id)
		return
	}
	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ForwardTimeout)
	defer cancel()
	up, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/jobs/"+workerID+"/trace", nil)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp, err := r.hc.Do(up)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "trace unreachable: worker %s is gone", node)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if resp.Header.Get("X-Trace-Truncated") == "true" {
		w.Header().Set("X-Trace-Truncated", "true")
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (r *Router) handleDebugJobs(w http.ResponseWriter, req *http.Request) {
	views := r.flight.Snapshot() // nil-safe: empty when recording disabled
	if views == nil {
		views = []*obs.TimelineView{}
	}
	writeJSON(w, http.StatusOK, serve.DebugJobsView{Count: len(views), Timelines: views})
}

func (r *Router) handleDebugJob(w http.ResponseWriter, req *http.Request) {
	if r.flight == nil {
		writeErr(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	v := r.flight.Find(req.PathValue("id"))
	if v == nil {
		writeErr(w, http.StatusNotFound,
			"no recorded timeline for %q (the recorder holds the last %d)",
			req.PathValue("id"), r.cfg.FlightRecorderSize)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (r *Router) handleDebugSLO(w http.ResponseWriter, req *http.Request) {
	trs := r.slo.Transitions()
	if trs == nil {
		trs = []serve.SLOTransition{}
	}
	writeJSON(w, http.StatusOK, serve.DebugSLOView{
		Level:       serve.SLOLevelName(r.slo.Level()),
		Transitions: trs,
	})
}

// MemberView is the wire description of one member in /debug/cluster.
type MemberView struct {
	Base     string `json:"base"`
	Name     string `json:"name,omitempty"`
	Up       bool   `json:"up"`
	Draining bool   `json:"draining,omitempty"`
	SLOLevel string `json:"slo_level"`
}

// ClusterView is the wire response of GET /debug/cluster.
type ClusterView struct {
	Router      string       `json:"router"`
	Replication int          `json:"replication"`
	Inflight    int          `json:"inflight"`
	UptimeMs    int64        `json:"uptime_ms"`
	Draining    bool         `json:"draining,omitempty"`
	Members     []MemberView `json:"members"`
}

func (r *Router) handleDebugCluster(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	inflight := r.inflight
	draining := r.draining
	r.mu.Unlock()
	v := ClusterView{
		Router:      r.cfg.NodeName,
		Replication: r.cfg.Replication,
		Inflight:    inflight,
		UptimeMs:    time.Since(r.start).Milliseconds(),
		Draining:    draining,
	}
	for _, m := range r.members {
		name := ""
		if n, ok := m.name.Load().(string); ok {
			name = n
		}
		v.Members = append(v.Members, MemberView{
			Base:     m.base,
			Name:     name,
			Up:       m.up.Load(),
			Draining: m.draining.Load(),
			SLOLevel: serve.SLOLevelName(int(m.sloLevel.Load())),
		})
	}
	writeJSON(w, http.StatusOK, v)
}
