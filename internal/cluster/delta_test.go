package cluster

import (
	"net/http"
	"testing"
	"time"

	"subgraph/internal/graph"
	"subgraph/internal/kernel"
	"subgraph/internal/serve"
)

// findMissingEdge returns a vertex pair g does not connect.
func findMissingEdge(t *testing.T, g *graph.Graph) [2]int {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				return [2]int{u, v}
			}
		}
	}
	t.Fatal("graph is complete; no edge to insert")
	return [2]int{}
}

// TestClusterDeltaRoutesAndSeeds pins the cluster evolving-graph
// contract end to end: a delta submitted to the router is applied by a
// parent-digest owner, the successor lands in the router mirror (with
// lineage) and on the child digest's owners, and the shared result cache
// is seeded along lineage — a count job on the successor answers at the
// router, cached, with the exact incremental count.
func TestClusterDeltaRoutesAndSeeds(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 2}, Config{})
	text, g := testEdgeList(t, 21)
	up, err := c.Client.UploadGraph(text)
	if err != nil {
		t.Fatal(err)
	}

	// Prime the shared cache with the parent's triangle count.
	spec := serve.JobSpec{Graph: up.Digest, Pattern: "clique:3", Mode: serve.ModeCount}
	jv, _, err := c.Client.SubmitJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Client.WaitJob(jv.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != serve.StateDone || first.Result == nil || first.Result.Count == nil {
		t.Fatalf("parent count job: state %s, err %q", first.State, first.Error)
	}

	ins := findMissingEdge(t, g)
	dv, status, err := c.Client.ApplyDelta(up.Digest, serve.DeltaRequest{Insert: [][2]int{ins}})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusCreated {
		t.Fatalf("delta status = %d, want 201", status)
	}
	if dv.Parent != up.Digest || dv.Digest == up.Digest {
		t.Fatalf("delta lineage: parent %q, child %q (base %q)", dv.Parent, dv.Digest, up.Digest)
	}
	if !dv.Incremental {
		t.Fatalf("one-edge delta not incremental: churn %v", dv.ChurnRatio)
	}

	// Router mirror holds the successor with lineage recorded.
	if _, ok := c.Router.store.Get(dv.Digest); !ok {
		t.Error("successor graph not in the router mirror")
	}
	if p, ok := c.Router.store.Parent(dv.Digest); !ok || p != up.Digest {
		t.Errorf("mirror lineage = (%q, %v), want parent %q", p, ok, up.Digest)
	}

	// Every owner of the child digest holds it (the applier stored it; the
	// rest got the push).
	for i, w := range c.Workers {
		resp, err := http.Get(w.BaseURL + "/v1/graphs/" + dv.Digest)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("worker %d: successor graph info status %d, want 200", i, resp.StatusCode)
		}
	}

	// Ground truth: the child's triangle count, from scratch.
	res, err := graph.ApplyDelta(g, graph.EdgeDelta{Insert: [][2]int{ins}})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(1)
	defer k.Close()
	want := k.Count(graph.NewBitAdjacency(res.Graph), 3)

	// The seeded entry answers a count job on the successor at the router.
	childSpec := serve.JobSpec{Graph: dv.Digest, Pattern: "clique:3", Mode: serve.ModeCount}
	second, status, err := c.Client.SubmitJob(childSpec)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || !second.Cached {
		t.Fatalf("successor count not answered from the seeded cache: status %d, view %+v", status, second)
	}
	if second.Result == nil || second.Result.Count == nil || *second.Result.Count != want {
		t.Fatalf("seeded count = %+v, want %d", second.Result, want)
	}

	if got := c.Router.reg.Counter(MetricGraphDeltas).Value(); got != 1 {
		t.Errorf("cluster_graph_deltas_total = %d, want 1", got)
	}
	if got := c.Router.reg.Counter(MetricDeltaSeeded).Value(); got < 1 {
		t.Errorf("cluster_delta_seeded_total = %d, want >= 1", got)
	}
}

// TestClusterDeltaHealsAmnesicOwner pins the repair path: workers whose
// tiny stores evicted the parent answer the forwarded delta 404, the
// router re-pushes the parent from its mirror, and the retry succeeds.
func TestClusterDeltaHealsAmnesicOwner(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 1, MaxGraphs: 1}, Config{})
	text1, g1 := testEdgeList(t, 31)
	up1, err := c.Client.UploadGraph(text1)
	if err != nil {
		t.Fatal(err)
	}
	// A second upload evicts the first from every worker's 1-entry store;
	// the router mirror keeps both.
	text2, _ := testEdgeList(t, 32)
	if _, err := c.Client.UploadGraph(text2); err != nil {
		t.Fatal(err)
	}

	ins := findMissingEdge(t, g1)
	dv, status, err := c.Client.ApplyDelta(up1.Digest, serve.DeltaRequest{Insert: [][2]int{ins}})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusCreated || dv.Parent != up1.Digest {
		t.Fatalf("healed delta: status %d, view %+v", status, dv)
	}
}

// TestClusterDeltaErrors pins the router-level verdicts: an unmirrored
// parent bounces 404 with re-upload guidance before any forward, and a
// worker's deterministic validation verdict (delete of a missing edge)
// is relayed through unchanged as 409.
func TestClusterDeltaErrors(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 1}, Config{})
	if _, status, err := c.Client.ApplyDelta("deadbeef", serve.DeltaRequest{Insert: [][2]int{{0, 1}}}); status != http.StatusNotFound {
		t.Fatalf("unknown parent: status %d (err %v), want 404", status, err)
	}

	text, g := testEdgeList(t, 41)
	up, err := c.Client.UploadGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	missing := findMissingEdge(t, g)
	if _, status, err := c.Client.ApplyDelta(up.Digest, serve.DeltaRequest{Delete: [][2]int{missing}}); status != http.StatusConflict {
		t.Fatalf("delete of missing edge: status %d (err %v), want relayed 409", status, err)
	}
}
