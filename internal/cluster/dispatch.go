package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"subgraph/internal/obs"
	"subgraph/internal/serve"
)

// cjob is the router-side job record. The router owns the job's public
// identity (c-%06d) and terminal view; which worker executes it — and
// whether it had to be re-dispatched — is an implementation detail the
// client never renegotiates.
type cjob struct {
	id      string
	key     string // serve.SpecCacheKey — the cluster-shared cache identity
	spec    serve.JobSpec
	trace   bool
	created time.Time
	tl      *obs.Timeline
	root    *obs.Span

	// resMu single-flights resolution: concurrent polls of one job must
	// not race a redispatch or double-finalize. Held across worker I/O —
	// acceptable because only this job's pollers contend on it.
	resMu sync.Mutex

	mu           sync.Mutex
	node         string // base URL of the worker holding the job
	workerID     string // the worker's job ID for it
	redispatched bool
	admitted     bool // counted in Router.inflight (false for cache hits)
	lastState    string
	terminalV    *serve.JobView
}

func (c *cjob) terminalView() *serve.JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.terminalV
}

func (c *cjob) assignment() (node, workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node, c.workerID
}

// skeletonView is the job's view before any worker state is known.
func (c *cjob) skeletonView() serve.JobView {
	c.mu.Lock()
	defer c.mu.Unlock()
	state := c.lastState
	if state == "" {
		state = serve.StateQueued
	}
	return serve.JobView{
		ID:       c.id,
		State:    state,
		Graph:    c.spec.Graph,
		Pattern:  c.spec.Pattern,
		Options:  c.spec.Options,
		Mode:     c.spec.Mode,
		Priority: c.spec.Priority,
		TraceID:  c.tl.TraceID(),
	}
}

// translate rebrands a worker view as this cluster job: router ID, and
// the executing node named so operators can find the hop.
func (c *cjob) translate(v serve.JobView, node string) serve.JobView {
	v.ID = c.id
	v.Node = node
	v.TraceID = c.tl.TraceID()
	return v
}

// register assigns an ID and records the job, evicting the oldest
// terminal jobs beyond the retention bound.
func (r *Router) register(cj *cjob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	cj.id = fmt.Sprintf("c-%06d", r.seq)
	r.jobs[cj.id] = cj
	r.order = append(r.order, cj.id)
	for len(r.jobs) > r.cfg.MaxRetainedJobs {
		evicted := false
		for i, id := range r.order {
			old := r.jobs[id]
			if old == nil || old.terminalView() != nil {
				delete(r.jobs, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live: retention is a soft bound
		}
	}
}

// unadmit rolls back a job the cluster could not place (every owner
// bounced it): the slot is released and the record dropped, so the 429
// leaves no residue.
func (r *Router) unadmit(cj *cjob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.jobs, cj.id)
	for i, id := range r.order {
		if id == cj.id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	if cj.admitted {
		cj.admitted = false
		r.inflight--
		r.reg.Gauge(GaugeInflight).Set(float64(r.inflight))
	}
}

// admit claims one cluster in-flight slot.
func (r *Router) admit(cj *cjob) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inflight >= r.cfg.MaxInflight {
		return false
	}
	r.inflight++
	cj.admitted = true
	r.reg.Gauge(GaugeInflight).Set(float64(r.inflight))
	return true
}

func (r *Router) jobByID(id string) *cjob {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

// Draining reports whether BeginDrain has been called.
func (r *Router) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// BeginDrain flips the router into draining mode: new submissions are
// answered 503 while already-admitted jobs keep resolving. Idempotent.
func (r *Router) BeginDrain() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.draining {
		r.draining = true
		r.logger.Info("router drain begun", "inflight", r.inflight)
	}
}

// Drain begins draining and actively resolves every admitted job until
// all are terminal or ctx expires — polls keep flowing to workers, so a
// worker crash mid-drain is detected and the job re-dispatched even
// with no client polling it.
func (r *Router) Drain(ctx context.Context) error {
	r.BeginDrain()
	r.Stop()
	for {
		pending := r.pendingJobs()
		if len(pending) == 0 {
			// Deltas have been refused since BeginDrain; the recount pool
			// can park permanently.
			r.krn.Close()
			r.logger.Info("router drain complete",
				"jobs_completed", r.reg.Counter(MetricJobsCompleted).Value())
			return nil
		}
		for _, cj := range pending {
			if ctx.Err() != nil {
				return fmt.Errorf("cluster: drain interrupted: %w", context.Cause(ctx))
			}
			r.resolve(cj)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: drain interrupted: %w", context.Cause(ctx))
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (r *Router) pendingJobs() []*cjob {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*cjob, 0, r.inflight)
	for _, cj := range r.jobs {
		if cj.terminalView() == nil {
			out = append(out, cj)
		}
	}
	return out
}

func (r *Router) publishTimeline(cj *cjob, outcome string) {
	if r.flight == nil || cj.tl == nil {
		return
	}
	v := cj.tl.View()
	v.JobID = cj.id
	v.Outcome = outcome
	r.flight.Record(v)
}

// ---- submit ------------------------------------------------------------

func (r *Router) handleJobSubmit(w http.ResponseWriter, req *http.Request) {
	traceID := req.Header.Get(serve.TraceIDHeader)
	if !obs.ValidTraceID(traceID) {
		traceID = obs.NewTraceID()
	}
	w.Header().Set(serve.TraceIDHeader, traceID)

	if r.Draining() {
		r.reg.Counter(MetricJobsDraining).Inc()
		writeErr(w, http.StatusServiceUnavailable, "cluster is draining; submit elsewhere")
		return
	}
	var spec serve.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, r.cfg.MaxUploadBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	r.reg.Counter(MetricJobsSubmitted).Inc()

	tl := obs.NewTimeline(traceID)
	root := tl.StartSpan("cluster_job")
	admission := root.StartChild("admission")

	// Inline graphs land in the router mirror first, then travel to
	// workers by digest — the push machinery dedupes, so a thousand jobs
	// inlining the same topology ship it to each owner once.
	if spec.GraphInline != "" {
		g, aerr := r.parseUpload(spec.GraphInline)
		if aerr != nil {
			writeErr(w, aerr.status, "%s", aerr.msg)
			return
		}
		digest, _ := r.store.Put(g)
		r.reg.Counter(MetricGraphUploads).Inc()
		spec.Graph, spec.GraphInline = digest, ""
	}
	key, err := serve.SpecCacheKey(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch spec.Priority {
	case "", serve.PriorityLow, serve.PriorityNormal, serve.PriorityHigh:
	default:
		writeErr(w, http.StatusBadRequest, "unknown priority %q (want low, normal, or high)", spec.Priority)
		return
	}
	admission.Finish()

	cj := &cjob{key: key, spec: spec, trace: spec.Trace, created: time.Now(), tl: tl, root: root}

	// Cluster-shared cache: a result any worker computed — for any
	// client, through any previous router process — answers here without
	// touching the fleet. Traced jobs bypass it, same as a single node.
	if !cj.trace {
		lookup := root.StartChild("cache_lookup")
		if res, ok := r.cache.Get(key); ok {
			lookup.Annotate("result", "hit")
			lookup.Finish()
			r.reg.Counter(MetricCacheHits).Inc()
			r.register(cj)
			v := cj.skeletonView()
			v.State = serve.StateDone
			v.Cached = true
			v.Result = res
			v.Node = r.cfg.NodeName
			root.Finish()
			v.LatencyNs = root.DurationNs()
			cj.mu.Lock()
			cj.terminalV = &v
			cj.mu.Unlock()
			r.publishTimeline(cj, serve.StateDone)
			writeJSON(w, http.StatusOK, v)
			return
		}
		lookup.Annotate("result", "miss")
		lookup.Finish()
		r.reg.Counter(MetricCacheMisses).Inc()
	}

	// Cluster-wide admission. Two gates: the router's own p99 guard over
	// end-to-end latency, and the fleet's scraped SLO levels — if every
	// live owner of this digest would shed the priority, bounce it here
	// instead of burning a forward round-trip to be told the same.
	if r.slo.ShouldShed(spec.Priority) || serve.SLOLevelSheds(r.minOwnerLevel(spec.Graph), spec.Priority) {
		r.reg.Counter(MetricJobsShed).Inc()
		root.Annotate("outcome", "shed")
		root.Finish()
		r.publishTimeline(cj, "shed")
		w.Header().Set("Retry-After", fmt.Sprintf("%d", r.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests,
			"cluster shedding %s-priority load; retry later", displayPriority(spec.Priority))
		return
	}
	if !r.admit(cj) {
		r.reg.Counter(MetricJobsRejected).Inc()
		root.Annotate("outcome", "rejected")
		root.Finish()
		r.publishTimeline(cj, "rejected")
		w.Header().Set("Retry-After", fmt.Sprintf("%d", r.retryAfterSeconds()))
		writeErr(w, http.StatusTooManyRequests,
			"cluster in-flight bound reached (%d jobs); retry later", r.cfg.MaxInflight)
		return
	}
	r.register(cj)

	res := r.forward(cj, "")
	switch {
	case res.terminal:
		writeJSON(w, http.StatusOK, *cj.terminalView())
	case res.assigned:
		w.Header().Set("Location", "/v1/jobs/"+cj.id)
		writeJSON(w, http.StatusAccepted, res.view)
	case res.status == http.StatusTooManyRequests:
		r.unadmit(cj)
		r.reg.Counter(MetricJobsBounced).Inc()
		root.Annotate("outcome", "bounced")
		root.Finish()
		r.publishTimeline(cj, "bounced")
		ra := res.retryAfter
		if ra == "" {
			ra = fmt.Sprintf("%d", r.retryAfterSeconds())
		}
		w.Header().Set("Retry-After", ra)
		writeErr(w, http.StatusTooManyRequests, "every replica is shedding load; retry later")
	case res.status == http.StatusServiceUnavailable:
		r.unadmit(cj)
		r.reg.Counter(MetricJobsUnroutable).Inc()
		root.Annotate("outcome", "unroutable")
		root.Finish()
		r.publishTimeline(cj, "unroutable")
		writeErr(w, http.StatusServiceUnavailable, "no live worker can take the job; retry later")
	default:
		// A worker judged the spec itself bad (e.g. unknown digest nowhere
		// repairable). Relay its verdict and leave no job behind.
		r.unadmit(cj)
		root.Annotate("outcome", "refused")
		root.Finish()
		r.publishTimeline(cj, "refused")
		writeErr(w, res.status, "%s", res.errMsg)
	}
}

// fwdResult is one forward round's outcome.
type fwdResult struct {
	terminal   bool // finalized from a terminal worker answer
	assigned   bool // accepted by a worker; cj.node/workerID set
	view       serve.JobView
	status     int // when neither: the HTTP status to surface
	retryAfter string
	errMsg     string
}

// forward walks the digest's live replicas (rendezvous order, rotated so
// a hot digest's load spreads) and places the job on the first worker
// that takes it. 429s note the backpressure and move on; 503s mark the
// member draining; connection errors mark it down; a 404 for the graph
// digest re-pushes the graph from the router mirror and retries the same
// worker once — the repair path for workers that restarted empty.
func (r *Router) forward(cj *cjob, exclude string) fwdResult {
	order := r.routeOrder(cj.spec.Graph, exclude)
	if len(order) == 0 {
		return fwdResult{status: http.StatusServiceUnavailable, errMsg: "no live members"}
	}
	start := int(r.rotor.Add(1)) % len(order)
	saw429 := false
	maxRetryAfter := 0
	lastErr := "no live members"
	for i := 0; i < len(order); i++ {
		m := order[(start+i)%len(order)]
		span := cj.root.StartChild("forward")
		span.Annotate("node", m.displayName())
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ForwardTimeout)
		view, status, ra, err := r.submitTo(ctx, m, cj.spec, cj.tl.TraceID())
		if status == http.StatusNotFound {
			// Worker lost (or never had) the graph; heal it from the mirror.
			if perr := r.pushGraph(ctx, m, cj.spec.Graph); perr == nil {
				span.Annotate("graph_pushed", "true")
				view, status, ra, err = r.submitTo(ctx, m, cj.spec, cj.tl.TraceID())
			}
		}
		cancel()
		span.Annotate("status", fmt.Sprintf("%d", status))
		span.Finish()
		switch {
		case status == http.StatusOK || status == http.StatusAccepted:
			r.reg.Counter(MetricJobsForwarded).Inc()
			cj.mu.Lock()
			cj.node, cj.workerID = m.base, view.ID
			cj.lastState = view.State
			cj.mu.Unlock()
			if view.State == serve.StateDone || view.State == serve.StateFailed {
				fv := r.finalize(cj, m, view)
				return fwdResult{terminal: true, view: fv}
			}
			return fwdResult{assigned: true, view: cj.translate(view, m.displayName())}
		case status == http.StatusTooManyRequests:
			saw429 = true
			// Workers may answer in either RFC 9110 form; normalize to
			// whole seconds (rounded up) for the re-emitted header.
			if d, ok := serve.ParseRetryAfter(ra, time.Now()); ok {
				if n := int((d + time.Second - 1) / time.Second); n > maxRetryAfter {
					maxRetryAfter = n
				}
			}
			lastErr = errString(err)
		case status == http.StatusServiceUnavailable:
			m.draining.Store(true)
			lastErr = errString(err)
		case status == 0:
			r.markDown(m)
			lastErr = errString(err)
		default:
			// 4xx: the spec is wrong in a way the router could not see
			// (e.g. digest unknown and not mirrored). No other worker will
			// disagree — surface it.
			return fwdResult{status: status, errMsg: errString(err)}
		}
	}
	if saw429 {
		// Clamp to the router's own honesty bound (mirrors the worker-side
		// retryAfterSeconds cap) so one confused worker cannot park every
		// client behind a giant date-form header.
		if maxRetryAfter > 30 {
			maxRetryAfter = 30
		}
		ra := ""
		if maxRetryAfter > 0 {
			ra = strconv.Itoa(maxRetryAfter)
		}
		return fwdResult{status: http.StatusTooManyRequests, retryAfter: ra, errMsg: lastErr}
	}
	return fwdResult{status: http.StatusServiceUnavailable, errMsg: lastErr}
}

// ---- poll / redispatch -------------------------------------------------

func (r *Router) handleJobGet(w http.ResponseWriter, req *http.Request) {
	cj := r.jobByID(req.PathValue("id"))
	if cj == nil {
		writeErr(w, http.StatusNotFound, "unknown job %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, r.resolve(cj))
}

// resolve returns the job's current view, consulting the owning worker.
// A dead or amnesiac worker (connection error, or 404 after a restart)
// triggers the redispatch path: the job is re-placed on another replica
// at most once — the engine is deterministic in the spec, so the re-run
// returns the byte-identical result the lost run would have.
func (r *Router) resolve(cj *cjob) serve.JobView {
	cj.resMu.Lock()
	defer cj.resMu.Unlock()
	if v := cj.terminalView(); v != nil {
		return *v
	}
	node, workerID := cj.assignment()
	m := r.memberByBase(node)
	if m == nil || workerID == "" {
		return cj.skeletonView()
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ForwardTimeout)
	var view serve.JobView
	status, _, err := r.getJSON(ctx, m.base, "/v1/jobs/"+workerID, &view)
	cancel()
	switch {
	case status == http.StatusOK && (view.State == serve.StateDone || view.State == serve.StateFailed):
		return r.finalize(cj, m, view)
	case status == http.StatusOK:
		cj.mu.Lock()
		cj.lastState = view.State
		cj.mu.Unlock()
		return cj.translate(view, m.displayName())
	case status == 0 || status == http.StatusNotFound:
		if status == 0 {
			r.markDown(m)
		}
		r.logger.Warn("job lost with worker; redispatching",
			"job_id", cj.id, "member", m.displayName(), "status", status, "err", err)
		return r.redispatch(cj, m.base)
	default:
		// Transient worker hiccup: report what we know; the next poll
		// retries.
		return cj.skeletonView()
	}
}

// redispatch re-places a job whose worker died or forgot it — once. The
// resubmission routes around the failed node (and any node the prober
// has marked down), pushing the graph from the router mirror when the
// replacement lacks it. A second loss fails the job: losing two replicas
// inside one job's lifetime is an outage to report, not to paper over.
func (r *Router) redispatch(cj *cjob, failedNode string) serve.JobView {
	cj.mu.Lock()
	already := cj.redispatched
	cj.redispatched = true
	cj.mu.Unlock()
	if already {
		return r.finalizeFailed(cj, "job lost twice: worker crashed after redispatch")
	}
	r.reg.Counter(MetricJobsRedispatched).Inc()
	cj.root.Annotate("redispatched_from", failedNode)
	res := r.forward(cj, failedNode)
	switch {
	case res.terminal:
		return *cj.terminalView()
	case res.assigned:
		return res.view
	default:
		return r.finalizeFailed(cj, fmt.Sprintf("redispatch found no worker: %s", res.errMsg))
	}
}

// finalize installs a worker's terminal view as the job's answer,
// feeding the shared cache, the router SLO guard, and the counters.
func (r *Router) finalize(cj *cjob, m *member, view serve.JobView) serve.JobView {
	v := cj.translate(view, m.displayName())
	cj.mu.Lock()
	if cj.terminalV != nil {
		defer cj.mu.Unlock()
		return *cj.terminalV
	}
	cj.mu.Unlock()

	latency := time.Since(cj.created)
	cj.root.Annotate("node", m.displayName())
	cj.root.Finish()
	v.LatencyNs = cj.root.DurationNs()

	cj.mu.Lock()
	cj.terminalV = &v
	cj.mu.Unlock()

	r.settle(cj)
	if v.State == serve.StateDone {
		r.reg.Counter(MetricJobsCompleted).Inc()
		// Complete results are reusable cluster-wide; partial
		// (deadline-shaped) ones and traced runs are not.
		if v.Result != nil && !v.Result.Partial && !cj.trace {
			r.cache.Put(cj.key, v.Result)
		}
	} else {
		r.reg.Counter(MetricJobsFailed).Inc()
	}
	r.reg.Histogram(HistJobWallNs, serve.JobWallBuckets).
		Observe(float64(latency.Nanoseconds()))
	r.slo.ObserveLatency(latency)
	r.publishTimeline(cj, v.State)
	r.logger.Info("cluster job terminal",
		"job_id", cj.id, "trace_id", cj.tl.TraceID(), "state", v.State,
		"node", m.displayName(), "latency_ms", latency.Milliseconds())
	return v
}

// finalizeFailed closes a job the cluster could not finish.
func (r *Router) finalizeFailed(cj *cjob, msg string) serve.JobView {
	v := cj.skeletonView()
	v.State = serve.StateFailed
	v.Error = msg
	cj.root.Annotate("outcome", "lost")
	cj.root.Finish()
	v.LatencyNs = cj.root.DurationNs()
	cj.mu.Lock()
	if cj.terminalV != nil {
		defer cj.mu.Unlock()
		return *cj.terminalV
	}
	cj.terminalV = &v
	cj.mu.Unlock()
	r.settle(cj)
	r.reg.Counter(MetricJobsFailed).Inc()
	r.publishTimeline(cj, serve.StateFailed)
	r.logger.Warn("cluster job failed", "job_id", cj.id, "err", msg)
	return v
}

// settle releases the job's in-flight slot (idempotent per job).
func (r *Router) settle(cj *cjob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cj.admitted {
		cj.admitted = false
		r.inflight--
		r.reg.Gauge(GaugeInflight).Set(float64(r.inflight))
	}
}

// retryAfterSeconds estimates when a bounced client should come back:
// cluster backlog × mean end-to-end latency over the live fleet,
// clamped to [1s, 30s].
func (r *Router) retryAfterSeconds() int {
	r.mu.Lock()
	backlog := r.inflight + 1
	r.mu.Unlock()
	fleet := len(r.upMembers(""))
	if fleet < 1 {
		fleet = 1
	}
	est := time.Duration(backlog) * r.slo.MeanLatency() / time.Duration(fleet)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func displayPriority(p string) string {
	if p == "" {
		return serve.PriorityNormal
	}
	return p
}
