package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"subgraph"
	"subgraph/internal/graph"
	"subgraph/internal/serve"
)

// startTestCluster boots an in-process router + n workers and tears the
// whole topology down on cleanup.
func startTestCluster(t *testing.T, n int, workerCfg serve.Config, routerCfg Config) *InProcess {
	t.Helper()
	c, err := StartInProcess(n, workerCfg, routerCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := c.Close(20 * time.Second); err != nil {
			t.Logf("cluster close: %v", err)
		}
	})
	return c
}

// testEdgeList renders a small seeded graph with a planted triangle.
func testEdgeList(t *testing.T, seed int64) (string, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _ := subgraph.PlantClique(subgraph.GNP(40, 0.06, rng), 3, rng)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String(), g
}

// workerIndex maps the Node a view reports (worker base URL before the
// first probe, node name after) back to the harness index.
func workerIndex(t *testing.T, c *InProcess, node string) int {
	t.Helper()
	for i, w := range c.Workers {
		if node == w.BaseURL || node == fmt.Sprintf("w%d", i) {
			return i
		}
	}
	t.Fatalf("view names unknown node %q", node)
	return -1
}

// TestClusterEndToEnd pins the tentpole contract: a job submitted to the
// router executes on a worker and returns the byte-identical Stats a
// direct library call produces.
func TestClusterEndToEnd(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 2}, Config{})
	text, g := testEdgeList(t, 3)

	up, err := c.Client.UploadGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	jv, status, err := c.Client.SubmitJob(serve.JobSpec{Graph: up.Digest, Pattern: "triangle"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit status = %d", status)
	}
	done, err := c.Client.WaitJob(jv.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != serve.StateDone || done.Result == nil {
		t.Fatalf("job: state %s, err %q", done.State, done.Error)
	}
	if done.Node == "" {
		t.Error("terminal view does not name the answering node")
	}

	// Library ground truth, byte for byte.
	h, _ := subgraph.ParsePattern("triangle")
	opts, _ := (subgraph.OptionsSpec{}).Options()
	opts.Deadline = 60 * time.Second
	rep, err := subgraph.Detect(subgraph.NewNetwork(g), h, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantStats, _ := json.Marshal(rep.Stats)
	if !bytes.Equal(done.Result.Stats, wantStats) {
		t.Errorf("cluster Stats diverge from library:\n got %s\nwant %s", done.Result.Stats, wantStats)
	}
	if done.Result.Detected != rep.Detected {
		t.Errorf("Detected = %v, library says %v", done.Result.Detected, rep.Detected)
	}
}

// TestClusterSharedCache pins the shared-result-cache contract: once any
// worker computes a result, a repeat submission is answered at the
// router — no matter which worker owns the digest — and marked cached.
func TestClusterSharedCache(t *testing.T) {
	c := startTestCluster(t, 3, serve.Config{Workers: 1}, Config{})
	text, _ := testEdgeList(t, 5)
	up, err := c.Client.UploadGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	spec := serve.JobSpec{Graph: up.Digest, Pattern: "clique:4"}

	jv, _, err := c.Client.SubmitJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Client.WaitJob(jv.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != serve.StateDone {
		t.Fatalf("first run failed: %s", first.Error)
	}

	second, status, err := c.Client.SubmitJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || !second.Cached || second.State != serve.StateDone {
		t.Fatalf("repeat submit not a cache hit: status %d, view %+v", status, second)
	}
	if !bytes.Equal(second.Result.Stats, first.Result.Stats) {
		t.Error("cached Stats differ from the computed run")
	}
	if got := c.Router.reg.Counter(MetricCacheHits).Value(); got != 1 {
		t.Errorf("router cache hits = %d, want 1", got)
	}

	// The aggregated metrics view folds the router hit into the
	// cluster-wide serve_cache_hits_total that single-node tooling reads.
	mv, err := c.Client.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if mv.Metrics.Counters[serve.MetricCacheHits] < 1 {
		t.Errorf("aggregated serve_cache_hits_total = %d, want >= 1",
			mv.Metrics.Counters[serve.MetricCacheHits])
	}
}

// TestClusterWorkerCrashRedispatch pins the failure contract: a job
// placed on a worker that dies before resolution is re-dispatched (at
// most once) to a surviving replica and completes with the usual result.
func TestClusterWorkerCrashRedispatch(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 1}, Config{Replication: 2})
	text, _ := testEdgeList(t, 7)
	up, err := c.Client.UploadGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	jv, status, err := c.Client.SubmitJob(serve.JobSpec{Graph: up.Digest, Pattern: "cycle:4"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (fresh spec must execute)", status)
	}

	// Kill the worker holding the job before the router can learn its
	// outcome.
	if err := c.KillWorker(workerIndex(t, c, jv.Node)); err != nil {
		t.Fatal(err)
	}
	done, err := c.Client.WaitJob(jv.ID, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != serve.StateDone || done.Result == nil {
		t.Fatalf("job after crash: state %s, err %q", done.State, done.Error)
	}
	if got := c.Router.reg.Counter(MetricJobsRedispatched).Value(); got != 1 {
		t.Errorf("redispatched = %d, want exactly 1", got)
	}
	if workerIndex(t, c, done.Node) == workerIndex(t, c, jv.Node) {
		t.Errorf("job resolved on the killed worker %q", done.Node)
	}
}

// TestClusterAdmissionBound pins cluster-wide admission control: with
// MaxInflight=1, a second submission bounces 429 + Retry-After while the
// first is unresolved, and is admitted again once it resolves.
func TestClusterAdmissionBound(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 1}, Config{MaxInflight: 1})
	text, _ := testEdgeList(t, 11)
	up, err := c.Client.UploadGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	jv, _, err := c.Client.SubmitJob(serve.JobSpec{Graph: up.Digest, Pattern: "path:4"})
	if err != nil {
		t.Fatal(err)
	}

	// Raw request: the typed client would retry the 429 away.
	body, _ := json.Marshal(serve.JobSpec{Graph: up.Digest, Pattern: "star:3"})
	resp, err := http.Post(c.BaseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	if got := c.Router.reg.Counter(MetricJobsRejected).Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	if _, err := c.Client.WaitJob(jv.ID, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Client.SubmitJob(serve.JobSpec{Graph: up.Digest, Pattern: "star:3"}); err != nil {
		t.Fatalf("submit after backlog cleared: %v", err)
	}
}

// TestClusterDrain pins the drain contract: after BeginDrain new submits
// bounce 503 while /healthz reports role router + draining under 503.
func TestClusterDrain(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 1}, Config{})
	c.Router.BeginDrain()

	body, _ := json.Marshal(serve.JobSpec{GraphInline: "0 1\n1 2\n2 0\n", Pattern: "triangle"})
	resp, err := http.Post(c.BaseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}

	hr, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hr.StatusCode)
	}
	var hv serve.HealthView
	if err := json.NewDecoder(hr.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	if hv.Role != RoleRouter || !hv.Draining || hv.Status != "draining" {
		t.Fatalf("draining health view = %+v", hv)
	}
}

// TestClusterHealthView pins the healthy /healthz shape: role, node
// name, and shard (mirrored digest) count.
func TestClusterHealthView(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 1}, Config{NodeName: "front"})
	text, _ := testEdgeList(t, 13)
	if _, err := c.Client.UploadGraph(text); err != nil {
		t.Fatal(err)
	}
	var hv serve.HealthView
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	if hv.Role != RoleRouter || hv.Node != "front" || hv.Shards != 1 || hv.Status != "ok" {
		t.Fatalf("health view = %+v", hv)
	}
}

// TestClusterShedsOnWorkerSLOLevels pins the fleet-fed admission gate: a
// stub worker advertising critical degradation through its /metrics
// gauge makes the router shed low/normal submissions at the front door
// (no forward round-trip), while high priority still goes through.
func TestClusterShedsOnWorkerSLOLevels(t *testing.T) {
	var submits atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			writeJSON(w, http.StatusOK, serve.HealthView{Status: "ok", Role: "worker", Node: "stub"})
		case r.URL.Path == "/v1/jobs" && r.Method == http.MethodPost:
			submits.Add(1)
			writeJSON(w, http.StatusAccepted, serve.JobView{ID: "j-000001", State: serve.StateRunning})
		default:
			http.NotFound(w, r)
		}
	}))
	defer stub.Close()

	rt, err := New(Config{Members: []string{stub.URL}})
	if err != nil {
		t.Fatal(err)
	}
	// Directly set the scraped level the prober would have learned.
	rt.members[0].sloLevel.Store(2)

	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	post := func(priority string) int {
		body, _ := json.Marshal(serve.JobSpec{
			Graph:    "deadbeef",
			Pattern:  "triangle",
			Priority: priority,
		})
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(serve.PriorityLow); got != http.StatusTooManyRequests {
		t.Fatalf("low-priority under critical fleet = %d, want 429", got)
	}
	if got := post(""); got != http.StatusTooManyRequests {
		t.Fatalf("normal-priority under critical fleet = %d, want 429", got)
	}
	if n := submits.Load(); n != 0 {
		t.Fatalf("shed submissions reached the worker %d times", n)
	}
	if got := post(serve.PriorityHigh); got != http.StatusAccepted {
		t.Fatalf("high-priority under critical fleet = %d, want 202 (forwarded)", got)
	}
	if n := submits.Load(); n != 1 {
		t.Fatalf("high-priority submit did not reach the worker (hits %d)", n)
	}
	if got := rt.reg.Counter(MetricJobsShed).Value(); got != 2 {
		t.Errorf("cluster_jobs_shed_total = %d, want 2", got)
	}
}

// TestClusterDrainResolvesWithoutPollers pins Drain's active side: jobs
// nobody is polling still resolve (Drain polls the workers itself).
func TestClusterDrainResolvesWithoutPollers(t *testing.T) {
	c := startTestCluster(t, 2, serve.Config{Workers: 2}, Config{})
	text, _ := testEdgeList(t, 17)
	up, err := c.Client.UploadGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, 4)
	for i, p := range []string{"triangle", "clique:4", "path:3", "star:4"} {
		jv, _, err := c.Client.SubmitJob(serve.JobSpec{Graph: up.Digest, Pattern: p})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, jv.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.Router.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		v, err := c.Client.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != serve.StateDone {
			t.Errorf("job %s after drain: state %s, err %q", id, v.State, v.Error)
		}
	}
}
