package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"subgraph/internal/graph"
	"subgraph/internal/kernel"
	"subgraph/internal/obs"
	"subgraph/internal/serve"
)

// Metric names exported through the router's obs.Registry. The cluster_
// prefix keeps them disjoint from the serve_ worker counters, so the
// aggregated /metrics view can sum worker pages into one snapshot
// without collisions.
const (
	MetricJobsSubmitted    = "cluster_jobs_submitted_total"
	MetricJobsForwarded    = "cluster_jobs_forwarded_total" // accepted by a worker
	MetricJobsCompleted    = "cluster_jobs_completed_total" // terminal done
	MetricJobsFailed       = "cluster_jobs_failed_total"    // terminal failed
	MetricJobsRedispatched = "cluster_jobs_redispatched_total"
	MetricJobsShed         = "cluster_jobs_shed_total"       // 429: SLO admission (router or owner levels)
	MetricJobsRejected     = "cluster_jobs_rejected_total"   // 429: cluster in-flight bound
	MetricJobsBounced      = "cluster_jobs_bounced_total"    // 429: every owner answered 429
	MetricJobsUnroutable   = "cluster_jobs_unroutable_total" // 503: no live worker to take the job
	MetricJobsDraining     = "cluster_jobs_draining_total"   // 503: router draining
	MetricCacheHits        = "cluster_cache_hits_total"
	MetricCacheMisses      = "cluster_cache_misses_total"
	MetricGraphUploads     = "cluster_graphs_uploaded_total"
	MetricGraphPushes      = "cluster_graph_pushes_total" // router→worker replications
	MetricGraphDeltas      = "cluster_graph_deltas_total" // deltas applied through the router
	MetricDeltaSeeded      = "cluster_delta_seeded_total" // shared-cache entries seeded along lineage
	MetricProbes           = "cluster_probes_total"
	GaugeMembers           = "cluster_members"
	GaugeMembersUp         = "cluster_members_up"
	GaugeInflight          = "cluster_inflight"
	GaugeReplication       = "cluster_replication"
	HistJobWallNs          = "cluster_job_wall_ns" // submit→terminal, router-observed
)

// RoleRouter is the HealthView.Role a router reports (workers report
// serve's "worker").
const RoleRouter = "router"

// Config tunes a Router. Zero fields take the documented defaults.
type Config struct {
	// Members are the worker base URLs (e.g. "http://10.0.0.7:8080").
	// The list is static for the router's lifetime; liveness within it is
	// probed continuously. At least one member is required.
	Members []string
	// Replication is how many members own each graph digest (default 2,
	// clamped to len(Members)). Jobs rotate across a digest's owners, and
	// graphs are pushed to every owner, so a hot graph's load spreads and
	// any single owner crash leaves a warm replica.
	Replication int
	// NodeName identifies the router in /healthz, prom labels, and
	// forwarded-job annotations (default "router").
	NodeName string
	// MaxInflight bounds jobs admitted cluster-wide but not yet terminal;
	// submissions beyond it bounce 429 + Retry-After (default 256).
	MaxInflight int
	// CacheSize bounds the router-held shared result cache, in entries
	// (default 2048; negative disables). Keys are serve.SpecCacheKey, so
	// a result computed by any worker hits for every client of the
	// cluster.
	CacheSize int
	// MaxRetainedJobs bounds the finished-job history kept for polling
	// (default 8192).
	MaxRetainedJobs int
	// MaxGraphs bounds the router's graph mirror (default 128). The
	// mirror is what re-pushes graphs to workers that restart empty.
	MaxGraphs int
	// MaxUploadBytes bounds an uploaded edge list (default 32 MiB).
	MaxUploadBytes int64
	// GraphLimits bounds what the upload parser accepts (serve defaults).
	GraphLimits graph.Limits
	// ProbeInterval is the health-probe cadence (default 250ms).
	ProbeInterval time.Duration
	// ProbeFailures is how many consecutive probe failures mark a member
	// down (default 2; forward/poll connection errors mark down at once).
	ProbeFailures int
	// ForwardTimeout bounds one forwarded submit or poll (default 15s).
	ForwardTimeout time.Duration
	// ResolveInterval is the cadence of the background completion
	// resolver, which polls workers for admitted jobs so a terminal state
	// is already known when a client polls the router (default 10ms).
	// Without it the router learns of a completion only inside a client
	// poll, stacking the router→worker hop on top of the client's poll
	// backoff and pushing tail latency past an extra backoff tick.
	ResolveInterval time.Duration
	// SLO configures the router's own p99 guard over end-to-end job
	// latency; zero disables router-level shedding. Worker-level SLO
	// degradation is honored regardless: scraped serve_slo_degraded
	// levels shed a submission when every owner of its digest would.
	SLO serve.SLOConfig
	// Registry receives router metrics; fresh when nil.
	Registry *obs.Registry
	// FlightRecorderSize bounds the router's /debug/jobs recorder
	// (default 256; negative disables).
	FlightRecorderSize int
	// Logger receives the router's structured log stream; nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > len(c.Members) {
		c.Replication = len(c.Members)
	}
	if c.NodeName == "" {
		c.NodeName = "router"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 2048
	}
	if c.CacheSize < 0 {
		c.CacheSize = -1
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 8192
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 128
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.GraphLimits.MaxVertices <= 0 {
		c.GraphLimits.MaxVertices = 2_000_000
	}
	if c.GraphLimits.MaxEdges <= 0 {
		c.GraphLimits.MaxEdges = 8_000_000
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 2
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 15 * time.Second
	}
	if c.ResolveInterval <= 0 {
		c.ResolveInterval = 10 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.FlightRecorderSize == 0 {
		c.FlightRecorderSize = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// member is the router's view of one worker node.
type member struct {
	base string

	up       atomic.Bool
	draining atomic.Bool
	sloLevel atomic.Int32 // scraped serve_slo_degraded
	fails    atomic.Int32 // consecutive probe failures
	name     atomic.Value // string: /healthz node name, once learned
}

// displayName is the worker's self-reported node name, falling back to
// its base URL until the first successful probe.
func (m *member) displayName() string {
	if v, ok := m.name.Load().(string); ok && v != "" {
		return v
	}
	return m.base
}

// Router is the cluster front door: it owns admission, routing, the
// shared result cache, and job identity; workers own execution. Create
// with New, attach Handler() to a listener, and call Start to launch
// the health prober.
type Router struct {
	cfg     Config
	reg     *obs.Registry
	store   *serve.Store // graph mirror: the replica of last resort
	cache   *serve.Cache // cluster-shared result cache
	slo     *serve.SLOGuard
	flight  *obs.FlightRecorder // nil when disabled
	krn     *kernel.Kernel      // incremental recounts for lineage cache seeding
	logger  *slog.Logger
	start   time.Time
	members []*member
	hc      *http.Client

	rotor atomic.Uint64 // spreads a hot digest's jobs across its replicas

	mu       sync.Mutex
	jobs     map[string]*cjob
	order    []string
	seq      int
	inflight int
	draining bool

	stopProbe   chan struct{}
	probeDone   chan struct{}
	resolveDone chan struct{}
}

// New builds a Router over a static member list (prober not started).
func New(cfg Config) (*Router, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("cluster: at least one member is required")
	}
	seen := make(map[string]bool, len(cfg.Members))
	for _, b := range cfg.Members {
		if b == "" || seen[b] {
			return nil, fmt.Errorf("cluster: member list has empty or duplicate entry %q", b)
		}
		seen[b] = true
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:    cfg,
		reg:    cfg.Registry,
		store:  serve.NewStore(cfg.MaxGraphs),
		cache:  serve.NewCache(cfg.CacheSize),
		krn:    kernel.New(0),
		logger: cfg.Logger,
		start:  time.Now(),
		jobs:   make(map[string]*cjob),
		hc:     &http.Client{},
	}
	for _, b := range cfg.Members {
		m := &member{base: strings.TrimRight(b, "/")}
		// Optimistic until proven dead: a cold router must be able to
		// forward before its first probe round lands.
		m.up.Store(true)
		r.members = append(r.members, m)
	}
	for _, name := range []string{
		MetricJobsSubmitted, MetricJobsForwarded, MetricJobsCompleted,
		MetricJobsFailed, MetricJobsRedispatched, MetricJobsShed,
		MetricJobsRejected, MetricJobsBounced, MetricJobsUnroutable,
		MetricJobsDraining, MetricCacheHits, MetricCacheMisses,
		MetricGraphUploads, MetricGraphPushes, MetricGraphDeltas,
		MetricDeltaSeeded, MetricProbes,
	} {
		r.reg.Counter(name)
	}
	r.reg.Gauge(GaugeMembers).Set(float64(len(r.members)))
	r.reg.Gauge(GaugeMembersUp).Set(float64(len(r.members)))
	r.reg.Gauge(GaugeInflight)
	r.reg.Gauge(GaugeReplication).Set(float64(cfg.Replication))
	r.reg.Histogram(HistJobWallNs, serve.JobWallBuckets)
	if cfg.FlightRecorderSize > 0 {
		r.flight = obs.NewFlightRecorder(cfg.FlightRecorderSize)
	}
	r.slo = serve.NewSLOGuard(cfg.SLO, r.reg)
	r.slo.SetLogger(cfg.Logger)
	return r, nil
}

// Registry exposes the router's metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// Start launches the background health prober and the completion
// resolver (idempotent-unsafe; call once). Stop with Stop or Drain.
func (r *Router) Start() {
	r.stopProbe = make(chan struct{})
	r.probeDone = make(chan struct{})
	r.resolveDone = make(chan struct{})
	go func() {
		defer close(r.probeDone)
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stopProbe:
				return
			case <-t.C:
				r.ProbeOnce(context.Background())
			}
		}
	}()
	go func() {
		defer close(r.resolveDone)
		t := time.NewTicker(r.cfg.ResolveInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stopProbe:
				return
			case <-t.C:
				r.resolvePending()
			}
		}
	}()
}

// Stop halts the prober and the resolver (safe when Start was never
// called).
func (r *Router) Stop() {
	if r.stopProbe == nil {
		return
	}
	select {
	case <-r.stopProbe:
	default:
		close(r.stopProbe)
	}
	<-r.probeDone
	<-r.resolveDone
}

// resolvePending polls the owning worker of every assigned, still
// pending job (bounded fan-out). Completions finalize here — feeding the
// shared cache, SLO guard, and counters — so a client poll, whenever it
// lands, gets the terminal view without waiting out a worker round-trip;
// a crashed worker is likewise discovered within one resolver tick even
// if no client is polling.
func (r *Router) resolvePending() {
	pending := r.pendingJobs()
	if len(pending) == 0 {
		return
	}
	sem := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for _, cj := range pending {
		if _, workerID := cj.assignment(); workerID == "" {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(cj *cjob) {
			defer wg.Done()
			r.resolve(cj)
			<-sem
		}(cj)
	}
	wg.Wait()
}

// ProbeOnce runs one health round over all members: /healthz decides
// up/draining, and up members' /metrics JSON refreshes the scraped SLO
// level feeding cluster admission. Exported so tests and the drain loop
// can force a round instead of waiting out the ticker.
func (r *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range r.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			r.probeMember(ctx, m)
		}(m)
	}
	wg.Wait()
	r.reg.Counter(MetricProbes).Inc()
	r.reg.Gauge(GaugeMembersUp).Set(float64(len(r.upMembers(""))))
}

func (r *Router) probeMember(ctx context.Context, m *member) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var hv serve.HealthView
	status, _, err := r.getJSON(ctx, m.base, "/healthz", &hv)
	switch {
	case err != nil && status == 0:
		if m.fails.Add(1) >= int32(r.cfg.ProbeFailures) && m.up.Load() {
			m.up.Store(false)
			r.logger.Warn("member down", "member", m.displayName(), "err", err)
		}
		return
	case status == http.StatusOK:
		m.fails.Store(0)
		if !m.up.Load() {
			r.logger.Info("member up", "member", m.base, "node", hv.Node)
		}
		m.up.Store(true)
		m.draining.Store(false)
	case status == http.StatusServiceUnavailable && hv.Draining:
		// Draining is not dead: its admitted jobs still resolve, it just
		// takes no new ones.
		m.fails.Store(0)
		m.up.Store(true)
		m.draining.Store(true)
	default:
		if m.fails.Add(1) >= int32(r.cfg.ProbeFailures) {
			m.up.Store(false)
		}
		return
	}
	if hv.Node != "" {
		m.name.Store(hv.Node)
	}
	// SLO level ride-along: the worker exports its degradation level as a
	// gauge; the router applies the worker's own shedding policy to it at
	// admission (dispatch.go).
	var mv serve.MetricsView
	if st, _, err := r.getJSON(ctx, m.base, "/metrics", &mv); err == nil && st == http.StatusOK {
		m.sloLevel.Store(int32(mv.Metrics.Gauges[serve.GaugeSLODegraded]))
	}
}

// markDown records a connection-refused member immediately (the prober
// will revive it once it answers again).
func (r *Router) markDown(m *member) {
	if m.up.Swap(false) {
		r.logger.Warn("member down (connection error)", "member", m.displayName())
		r.reg.Gauge(GaugeMembersUp).Set(float64(len(r.upMembers(""))))
	}
}

// upMembers returns live, non-draining members, excluding the named base.
func (r *Router) upMembers(exclude string) []*member {
	out := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		if m.base != exclude && m.up.Load() && !m.draining.Load() {
			out = append(out, m)
		}
	}
	return out
}

func (r *Router) memberByBase(base string) *member {
	for _, m := range r.members {
		if m.base == base {
			return m
		}
	}
	return nil
}

// routeOrder returns the members to try for a digest, owners first
// (rendezvous order), skipping dead/draining nodes and the excluded
// base. When no owner is live the remaining up members are returned
// instead: ownership is a locality preference, not a correctness
// constraint — any worker can compute any job once the graph is pushed.
func (r *Router) routeOrder(digest, exclude string) []*member {
	bases := make([]string, len(r.members))
	for i, m := range r.members {
		bases[i] = m.base
	}
	owners := Owners(bases, digest, r.cfg.Replication)
	isOwner := make(map[string]bool, len(owners))
	out := make([]*member, 0, len(owners))
	for _, b := range owners {
		isOwner[b] = true
		if m := r.memberByBase(b); m != nil && b != exclude && m.up.Load() && !m.draining.Load() {
			out = append(out, m)
		}
	}
	if len(out) > 0 {
		return out
	}
	fallback := r.upMembers(exclude)
	out = out[:0]
	for _, m := range fallback {
		if !isOwner[m.base] {
			out = append(out, m)
		}
	}
	return out
}

// minOwnerLevel is the lowest scraped SLO level among a digest's live
// owners: if the least-loaded replica would admit a priority, the
// cluster admits it; only when every owner sheds does the router bounce
// at the front door (dispatch.go).
func (r *Router) minOwnerLevel(digest string) int {
	min := -1
	for _, m := range r.routeOrder(digest, "") {
		lvl := int(m.sloLevel.Load())
		if min < 0 || lvl < min {
			min = lvl
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// ---- raw HTTP plumbing -------------------------------------------------
//
// The router speaks to workers directly rather than through serve.Client:
// it must propagate trace identity verbatim, read Retry-After off 429s,
// and make its own failover decisions per hop — exactly the parts a
// retrying client abstracts away.

// getJSON GETs base+path and decodes the body into out (also for error
// statuses carrying {"error": ...} — the message is returned as err with
// the status). status 0 means no usable HTTP response.
func (r *Router) getJSON(ctx context.Context, base, path string, out any) (int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return 0, nil, err
	}
	return r.doJSON(req, out)
}

func (r *Router) doJSON(req *http.Request, out any) (int, http.Header, error) {
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		// Decode what we can anyway: a draining /healthz 503 still carries
		// the HealthView the prober needs.
		if out != nil {
			_ = json.Unmarshal(body, out)
		}
		return resp.StatusCode, resp.Header, fmt.Errorf("%s", msg)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, resp.Header, fmt.Errorf("decoding %s: %w", req.URL.Path, err)
		}
	}
	return resp.StatusCode, resp.Header, nil
}

// submitTo forwards a digest-form spec to one worker, tagging the hop
// with the router's identity and the job's trace ID. retryAfter carries
// the worker's Retry-After header value on 429.
func (r *Router) submitTo(ctx context.Context, m *member, spec serve.JobSpec, traceID string) (view serve.JobView, status int, retryAfter string, err error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return view, 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return view, 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.TraceIDHeader, traceID)
	req.Header.Set(serve.ForwardedByHeader, r.cfg.NodeName)
	status, hdr, err := r.doJSON(req, &view)
	if hdr != nil {
		retryAfter = hdr.Get("Retry-After")
	}
	return view, status, retryAfter, err
}

// pushGraph replicates a mirrored graph to a worker (the 404-repair path
// for workers that restarted empty, and the upload fan-out).
func (r *Router) pushGraph(ctx context.Context, m *member, digest string) error {
	g, ok := r.store.Get(digest)
	if !ok {
		return fmt.Errorf("digest %s not in router mirror", digest)
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.base+"/v1/graphs", &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	status, _, err := r.doJSON(req, nil)
	if err != nil {
		return err
	}
	if status != http.StatusCreated && status != http.StatusOK {
		return fmt.Errorf("push to %s: status %d", m.displayName(), status)
	}
	r.reg.Counter(MetricGraphPushes).Inc()
	return nil
}

// clusterMetrics aggregates the fleet into one serve.MetricsView: the
// router's own registry plus the sum of every live worker's serve_*
// counters, with the router's shared-cache traffic folded into the
// serve_cache_* totals. A loadgen (or dashboard) pointed at the router
// therefore reads cluster-wide hit rates and shed counts with the same
// keys it uses against a single node.
func (r *Router) clusterMetrics(ctx context.Context) serve.MetricsView {
	snap := r.reg.Snapshot()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
		up int
	)
	for _, m := range r.members {
		if !m.up.Load() {
			continue
		}
		up++
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			var mv serve.MetricsView
			if st, _, err := r.getJSON(cctx, m.base, "/metrics", &mv); err != nil || st != http.StatusOK {
				return
			}
			mu.Lock()
			for k, v := range mv.Metrics.Counters {
				snap.Counters[k] += v
			}
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	// Fold router-level outcomes into the serve_* names the single-node
	// tooling reads: a router cache hit is a cluster cache hit, a router
	// shed is a cluster shed. Router cache *misses* are not folded — they
	// continue to a worker and land as a worker hit or miss there.
	snap.Counters[serve.MetricCacheHits] += snap.Counters[MetricCacheHits]
	snap.Counters[serve.MetricJobsShed] += snap.Counters[MetricJobsShed]
	snap.Counters[serve.MetricJobsRejected] += snap.Counters[MetricJobsRejected] + snap.Counters[MetricJobsBounced]
	r.mu.Lock()
	inflight := r.inflight
	draining := r.draining
	r.mu.Unlock()
	return serve.MetricsView{
		UptimeMs:     time.Since(r.start).Milliseconds(),
		Workers:      up,
		QueueDepth:   inflight,
		QueueCap:     r.cfg.MaxInflight,
		Draining:     draining,
		Graphs:       r.store.Len(),
		CacheEntries: r.cache.Len(),
		Metrics:      snap,
	}
}
