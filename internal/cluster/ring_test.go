package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestOwnersDeterministicAndDistinct(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for i := 0; i < 50; i++ {
		digest := fmt.Sprintf("sha256:%064d", i)
		o1 := Owners(members, digest, 2)
		o2 := Owners(members, digest, 2)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("digest %s: owners not deterministic: %v vs %v", digest, o1, o2)
		}
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("digest %s: replica set not 2 distinct members: %v", digest, o1)
		}
	}
}

func TestOwnersClamps(t *testing.T) {
	members := []string{"a", "b"}
	if got := Owners(members, "d", 5); len(got) != 2 {
		t.Fatalf("r beyond fleet size: got %v", got)
	}
	if got := Owners(members, "d", 0); len(got) != 1 {
		t.Fatalf("r=0 should clamp to 1: got %v", got)
	}
	if got := Owners(nil, "d", 2); got != nil {
		t.Fatalf("empty member list: got %v", got)
	}
}

// TestOwnersBalance: rendezvous hashing should spread primaries roughly
// evenly. With 4 members and 2000 digests a uniform split is 500 each;
// accept anything within ±40%.
func TestOwnersBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	primaries := make(map[string]int)
	for i := 0; i < 2000; i++ {
		o := Owners(members, fmt.Sprintf("sha256:%064x", i*2654435761), 2)
		primaries[o[0]]++
	}
	for _, m := range members {
		n := primaries[m]
		if n < 300 || n > 700 {
			t.Errorf("member %s owns %d/2000 primaries; want roughly 500", m, n)
		}
	}
}

// TestOwnersMinimalDisruption pins the HRW property the static member
// list depends on: removing one member only reassigns digests it owned.
func TestOwnersMinimalDisruption(t *testing.T) {
	full := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	without := []string{"http://a:1", "http://b:1", "http://d:1"} // c removed
	for i := 0; i < 500; i++ {
		digest := fmt.Sprintf("sha256:%064d", i)
		before := Owners(full, digest, 1)
		after := Owners(without, digest, 1)
		if before[0] != "http://c:1" && before[0] != after[0] {
			t.Fatalf("digest %s moved from %s to %s though its owner survived",
				digest, before[0], after[0])
		}
	}
}
