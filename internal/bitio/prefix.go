package bitio

import "fmt"

// Elias-gamma coding gives a universal prefix-free code for positive
// integers; we offset by one so zero is encodable. Section 4 of the paper
// requires algorithm messages to form a prefix code so that concatenated
// transcripts parse uniquely; Gamma/GammaDecode are the canonical such code
// used by the built-in algorithms, and IsPrefixFree validates arbitrary
// message sets.

// Gamma appends the Elias-gamma code of v+1 to w (so any v ≥ 0 is valid).
// The code of a k-bit number is k-1 zeros followed by the number itself:
// |code(v)| = 2⌊log2(v+1)⌋ + 1 bits.
func Gamma(w *Writer, v uint64) {
	if v == ^uint64(0) { // v+1 would overflow
		panic("bitio: Gamma cannot encode MaxUint64")
	}
	x := v + 1
	nbits := bitLen(x)
	for i := 0; i < nbits-1; i++ {
		w.WriteBit(0)
	}
	w.WriteUint(x, nbits)
}

// GammaBits returns the Elias-gamma code of v as a BitString.
func GammaBits(v uint64) BitString {
	w := NewWriter()
	Gamma(w, v)
	return w.BitString()
}

// GammaLen returns the length in bits of Gamma's encoding of v.
func GammaLen(v uint64) int {
	if v == ^uint64(0) {
		panic("bitio: Gamma cannot encode MaxUint64")
	}
	return 2*(bitLen(v+1)-1) + 1
}

// GammaDecode consumes one Elias-gamma codeword from r.
func GammaDecode(r *Reader) (v uint64, ok bool) {
	zeros := 0
	for {
		b, ok := r.ReadBit()
		if !ok {
			return 0, false
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros > 63 {
			return 0, false
		}
	}
	rest, ok := r.ReadUint(zeros)
	if !ok {
		return 0, false
	}
	x := uint64(1)<<uint(zeros) | rest
	return x - 1, true
}

func bitLen(x uint64) int {
	n := 0
	for x != 0 {
		n++
		x >>= 1
	}
	return n
}

// IsPrefixFree reports whether no string in set is a proper prefix of
// another (equal strings are allowed only if they are the same entry;
// duplicates are reported as a violation since a code must be uniquely
// decodable). If it returns false, the offending pair indices are returned.
func IsPrefixFree(set []BitString) (ok bool, i, j int) {
	for a := 0; a < len(set); a++ {
		for b := 0; b < len(set); b++ {
			if a == b {
				continue
			}
			if set[b].HasPrefix(set[a]) {
				return false, a, b
			}
		}
	}
	return true, 0, 0
}

// KraftSum returns Σ 2^{-len(s)} over the set, as a float. A prefix-free
// code satisfies KraftSum ≤ 1; tests use this as a sanity invariant.
func KraftSum(set []BitString) float64 {
	sum := 0.0
	for _, s := range set {
		sum += pow2neg(s.Len())
	}
	return sum
}

func pow2neg(k int) float64 {
	v := 1.0
	for i := 0; i < k; i++ {
		v /= 2
	}
	return v
}

// MustParseAll repeatedly decodes gamma codewords until the reader is
// exhausted, panicking on malformed input. Used by transcript parsers in
// tests where the input is known to be well-formed.
func MustParseAll(s BitString) []uint64 {
	r := NewReader(s)
	var out []uint64
	for r.Remaining() > 0 {
		v, ok := GammaDecode(r)
		if !ok {
			panic(fmt.Sprintf("bitio: malformed gamma stream at bit %d", r.Pos()))
		}
		out = append(out, v)
	}
	return out
}
