// Package bitio provides bit-granular strings, readers and writers, and
// simple self-delimiting (prefix-free) integer codes.
//
// CONGEST bandwidth is measured in bits, not bytes, so simulator message
// payloads are BitStrings: the number of significant bits is tracked exactly
// and bandwidth enforcement never rounds up to byte boundaries. The prefix
// code helpers implement the self-delimiting message requirement of the
// Section 4 lower bound (transcripts must parse uniquely).
package bitio

import (
	"fmt"
	"strings"
)

// BitString is an immutable-by-convention sequence of bits. Bit i is stored
// in data[i/8] at position i%8 counting from the most significant bit, so
// lexicographic byte order equals lexicographic bit order.
//
// The zero value is the empty bit string, ready to use.
type BitString struct {
	data []byte
	n    int // number of significant bits
}

// Len returns the number of bits in s.
func (s BitString) Len() int { return s.n }

// Empty reports whether s has zero bits.
func (s BitString) Empty() bool { return s.n == 0 }

// Bit returns bit i (0 or 1). It panics if i is out of range.
func (s BitString) Bit(i int) byte {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitio: bit index %d out of range [0,%d)", i, s.n))
	}
	return (s.data[i>>3] >> (7 - uint(i&7))) & 1
}

// Bytes returns the underlying storage. The final byte's trailing bits
// (beyond Len) are zero. The caller must not modify the result.
func (s BitString) Bytes() []byte { return s.data }

// String renders the bits as a "0"/"1" string, for debugging and tests.
func (s BitString) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		b.WriteByte('0' + s.Bit(i))
	}
	return b.String()
}

// Equal reports whether s and t contain the same bits.
func (s BitString) Equal(t BitString) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.data {
		if s.data[i] != t.data[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is a prefix of s.
func (s BitString) HasPrefix(p BitString) bool {
	if p.n > s.n {
		return false
	}
	full := p.n >> 3
	for i := 0; i < full; i++ {
		if s.data[i] != p.data[i] {
			return false
		}
	}
	if rem := uint(p.n & 7); rem != 0 {
		mask := byte(0xFF << (8 - rem))
		if (s.data[full]^p.data[full])&mask != 0 {
			return false
		}
	}
	return true
}

// Concat returns the concatenation of s followed by t.
func (s BitString) Concat(t BitString) BitString {
	w := NewWriter()
	w.WriteBits(s)
	w.WriteBits(t)
	return w.BitString()
}

// Slice returns the bit substring [from, to).
func (s BitString) Slice(from, to int) BitString {
	if from < 0 || to > s.n || from > to {
		panic(fmt.Sprintf("bitio: slice [%d,%d) out of range [0,%d]", from, to, s.n))
	}
	w := NewWriter()
	for i := from; i < to; i++ {
		w.WriteBit(s.Bit(i))
	}
	return w.BitString()
}

// FromBits builds a BitString from a slice of 0/1 values.
func FromBits(bits []byte) BitString {
	w := NewWriter()
	for _, b := range bits {
		w.WriteBit(b)
	}
	return w.BitString()
}

// FromString parses a "0101…" string; any rune other than '0'/'1' panics.
func FromString(s string) BitString {
	w := NewWriter()
	for _, r := range s {
		switch r {
		case '0':
			w.WriteBit(0)
		case '1':
			w.WriteBit(1)
		default:
			panic(fmt.Sprintf("bitio: invalid bit rune %q", r))
		}
	}
	return w.BitString()
}

// FromBytes wraps raw bytes as a BitString of 8*len(b) bits. The slice is
// copied so later mutation of b does not alias the result.
func FromBytes(b []byte) BitString {
	cp := make([]byte, len(b))
	copy(cp, b)
	return BitString{data: cp, n: 8 * len(b)}
}

// Uint builds a fixed-width big-endian encoding of v using width bits.
// It panics if v does not fit.
func Uint(v uint64, width int) BitString {
	w := NewWriter()
	w.WriteUint(v, width)
	return w.BitString()
}

// Writer accumulates bits. The zero value is not ready; use NewWriter.
type Writer struct {
	data []byte
	n    int
}

// NewWriter returns an empty bit writer.
func NewWriter() *Writer { return &Writer{} }

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.n }

// WriteBit appends one bit (any nonzero b counts as 1).
func (w *Writer) WriteBit(b byte) {
	if w.n&7 == 0 {
		w.data = append(w.data, 0)
	}
	if b != 0 {
		w.data[w.n>>3] |= 1 << (7 - uint(w.n&7))
	}
	w.n++
}

// WriteUint appends v as a fixed-width big-endian field. It panics if v
// needs more than width bits or width is not in [0,64].
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 && v>>uint(width) != 0 {
		panic(fmt.Sprintf("bitio: value %d does not fit in %d bits", v, width))
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(byte((v >> uint(i)) & 1))
	}
}

// WriteBits appends all bits of s.
func (w *Writer) WriteBits(s BitString) {
	// Fast path: writer is byte-aligned, bulk-copy whole bytes.
	if w.n&7 == 0 {
		w.data = append(w.data, s.data...)
		w.n += s.n
		// Zero any trailing garbage is unnecessary: s keeps trailing bits 0.
		return
	}
	for i := 0; i < s.n; i++ {
		w.WriteBit(s.Bit(i))
	}
}

// BitString returns the accumulated bits. The writer may keep being used;
// the returned value does not alias future writes.
func (w *Writer) BitString() BitString {
	cp := make([]byte, len(w.data))
	copy(cp, w.data)
	return BitString{data: cp, n: w.n}
}

// Reader consumes a BitString from the front.
type Reader struct {
	s   BitString
	pos int
}

// NewReader returns a reader positioned at the first bit of s.
func NewReader(s BitString) *Reader { return &Reader{s: s} }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.s.n - r.pos }

// Pos returns the number of bits consumed so far.
func (r *Reader) Pos() int { return r.pos }

// ReadBit consumes and returns one bit. ok is false at end of input.
func (r *Reader) ReadBit() (bit byte, ok bool) {
	if r.pos >= r.s.n {
		return 0, false
	}
	b := r.s.Bit(r.pos)
	r.pos++
	return b, true
}

// ReadUint consumes a fixed-width big-endian field.
func (r *Reader) ReadUint(width int) (v uint64, ok bool) {
	if width < 0 || width > 64 || r.Remaining() < width {
		return 0, false
	}
	for i := 0; i < width; i++ {
		b, _ := r.ReadBit()
		v = v<<1 | uint64(b)
	}
	return v, true
}
