package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyBitString(t *testing.T) {
	var s BitString
	if s.Len() != 0 || !s.Empty() {
		t.Fatalf("zero BitString not empty: len=%d", s.Len())
	}
	if s.String() != "" {
		t.Fatalf("zero BitString String()=%q", s.String())
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	cases := []string{"", "0", "1", "01", "10", "1111111110", "010101010101010101"}
	for _, c := range cases {
		s := FromString(c)
		if s.String() != c {
			t.Errorf("FromString(%q).String() = %q", c, s.String())
		}
		if s.Len() != len(c) {
			t.Errorf("FromString(%q).Len() = %d", c, s.Len())
		}
	}
}

func TestBitIndexing(t *testing.T) {
	s := FromString("10110001")
	want := []byte{1, 0, 1, 1, 0, 0, 0, 1}
	for i, w := range want {
		if s.Bit(i) != w {
			t.Errorf("Bit(%d) = %d, want %d", i, s.Bit(i), w)
		}
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromString("101").Bit(3)
}

func TestWriteUintAndReadUint(t *testing.T) {
	w := NewWriter()
	w.WriteUint(0b1011, 4)
	w.WriteUint(0, 3)
	w.WriteUint(0xFFFF, 16)
	s := w.BitString()
	r := NewReader(s)
	if v, ok := r.ReadUint(4); !ok || v != 0b1011 {
		t.Fatalf("ReadUint(4) = %d,%v", v, ok)
	}
	if v, ok := r.ReadUint(3); !ok || v != 0 {
		t.Fatalf("ReadUint(3) = %d,%v", v, ok)
	}
	if v, ok := r.ReadUint(16); !ok || v != 0xFFFF {
		t.Fatalf("ReadUint(16) = %d,%v", v, ok)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	if _, ok := r.ReadUint(1); ok {
		t.Fatal("read past end succeeded")
	}
}

func TestWriteUintPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWriter().WriteUint(16, 4)
}

func TestConcatAndSlice(t *testing.T) {
	a := FromString("101")
	b := FromString("0011")
	c := a.Concat(b)
	if c.String() != "1010011" {
		t.Fatalf("concat = %q", c.String())
	}
	if got := c.Slice(3, 7).String(); got != "0011" {
		t.Fatalf("slice = %q", got)
	}
	if got := c.Slice(0, 0).String(); got != "" {
		t.Fatalf("empty slice = %q", got)
	}
}

func TestHasPrefix(t *testing.T) {
	s := FromString("110100111")
	for i := 0; i <= s.Len(); i++ {
		if !s.HasPrefix(s.Slice(0, i)) {
			t.Errorf("prefix of length %d not recognized", i)
		}
	}
	if s.HasPrefix(FromString("111")) {
		t.Error("false prefix accepted")
	}
	if FromString("11").HasPrefix(s) {
		t.Error("longer string accepted as prefix")
	}
}

func TestEqual(t *testing.T) {
	if !FromString("1010").Equal(FromString("1010")) {
		t.Error("equal strings not Equal")
	}
	if FromString("1010").Equal(FromString("10100")) {
		t.Error("different lengths Equal")
	}
	if FromString("1010").Equal(FromString("1011")) {
		t.Error("different bits Equal")
	}
}

func TestFromBytes(t *testing.T) {
	b := []byte{0xA5}
	s := FromBytes(b)
	if s.String() != "10100101" {
		t.Fatalf("FromBytes = %q", s.String())
	}
	b[0] = 0 // must not alias
	if s.String() != "10100101" {
		t.Fatal("FromBytes aliases caller slice")
	}
}

func TestWriterBitStringSnapshot(t *testing.T) {
	w := NewWriter()
	w.WriteBit(1)
	s1 := w.BitString()
	w.WriteBit(1)
	if s1.Len() != 1 {
		t.Fatal("snapshot grew with writer")
	}
}

// Property: writing random bit sequences and reading them back is identity.
func TestQuickWriterReaderRoundTrip(t *testing.T) {
	f := func(bits []bool) bool {
		w := NewWriter()
		for _, b := range bits {
			if b {
				w.WriteBit(1)
			} else {
				w.WriteBit(0)
			}
		}
		s := w.BitString()
		if s.Len() != len(bits) {
			return false
		}
		for i, b := range bits {
			want := byte(0)
			if b {
				want = 1
			}
			if s.Bit(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Concat length is additive and preserves contents.
func TestQuickConcat(t *testing.T) {
	f := func(a, b []bool) bool {
		sa, sb := fromBools(a), fromBools(b)
		c := sa.Concat(sb)
		if c.Len() != sa.Len()+sb.Len() {
			return false
		}
		return c.Slice(0, sa.Len()).Equal(sa) && c.Slice(sa.Len(), c.Len()).Equal(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fromBools(bits []bool) BitString {
	w := NewWriter()
	for _, b := range bits {
		if b {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
	}
	return w.BitString()
}

func TestGammaRoundTrip(t *testing.T) {
	values := []uint64{0, 1, 2, 3, 7, 8, 100, 1 << 20, 1<<63 - 1}
	w := NewWriter()
	for _, v := range values {
		Gamma(w, v)
	}
	r := NewReader(w.BitString())
	for _, v := range values {
		got, ok := GammaDecode(r)
		if !ok || got != v {
			t.Fatalf("GammaDecode = %d,%v want %d", got, ok, v)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("leftover bits: %d", r.Remaining())
	}
}

func TestGammaLenMatchesEncoding(t *testing.T) {
	for v := uint64(0); v < 1000; v++ {
		if got := GammaBits(v).Len(); got != GammaLen(v) {
			t.Fatalf("GammaLen(%d) = %d, encoding has %d bits", v, GammaLen(v), got)
		}
	}
}

func TestGammaIsPrefixFree(t *testing.T) {
	var set []BitString
	for v := uint64(0); v < 200; v++ {
		set = append(set, GammaBits(v))
	}
	if ok, i, j := IsPrefixFree(set); !ok {
		t.Fatalf("gamma code not prefix free: %d prefixes %d", i, j)
	}
	if k := KraftSum(set); k > 1.0000001 {
		t.Fatalf("Kraft sum %f > 1", k)
	}
}

func TestIsPrefixFreeDetectsViolation(t *testing.T) {
	set := []BitString{FromString("10"), FromString("101")}
	if ok, _, _ := IsPrefixFree(set); ok {
		t.Fatal("violation not detected")
	}
	dup := []BitString{FromString("10"), FromString("10")}
	if ok, _, _ := IsPrefixFree(dup); ok {
		t.Fatal("duplicate not detected")
	}
}

// Property: gamma round-trips for arbitrary uint64 below 2^62.
func TestQuickGamma(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<62 - 1
		r := NewReader(GammaBits(v))
		got, ok := GammaDecode(r)
		return ok && got == v && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaDecodeMalformed(t *testing.T) {
	// All zeros: no terminating 1.
	r := NewReader(FromString("00000"))
	if _, ok := GammaDecode(r); ok {
		t.Fatal("decoded malformed stream")
	}
	// Truncated payload: "001" promises 2 more bits but has none.
	r = NewReader(FromString("001"))
	if _, ok := GammaDecode(r); ok {
		t.Fatal("decoded truncated stream")
	}
}

func TestMustParseAll(t *testing.T) {
	w := NewWriter()
	want := []uint64{4, 0, 99}
	for _, v := range want {
		Gamma(w, v)
	}
	got := MustParseAll(w.BitString())
	if len(got) != len(want) {
		t.Fatalf("parsed %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestWriteBitsUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		w := NewWriter()
		var want string
		for chunk := 0; chunk < 5; chunk++ {
			n := rng.Intn(20)
			cw := NewWriter()
			for i := 0; i < n; i++ {
				b := byte(rng.Intn(2))
				cw.WriteBit(b)
			}
			cs := cw.BitString()
			want += cs.String()
			w.WriteBits(cs)
		}
		if got := w.BitString().String(); got != want {
			t.Fatalf("trial %d: WriteBits mismatch\n got %s\nwant %s", trial, got, want)
		}
	}
}
