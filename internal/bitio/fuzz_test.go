package bitio

import "testing"

// Native fuzz targets (also executed as unit tests over the seed corpus
// by `go test`): decoders must never panic on arbitrary input, and
// round-trips must be exact.

func FuzzGammaDecode(f *testing.F) {
	f.Add([]byte{0xFF}, 3)
	f.Add([]byte{0x00}, 8)
	f.Add([]byte{0xA5, 0x3C}, 16)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > 8*len(data) {
			return
		}
		s := FromBytes(data).Slice(0, nbits)
		r := NewReader(s)
		for r.Remaining() > 0 {
			if _, ok := GammaDecode(r); !ok {
				break
			}
		}
	})
}

func FuzzGammaRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1<<40 + 12345))
	f.Fuzz(func(t *testing.T, v uint64) {
		if v == ^uint64(0) {
			return
		}
		r := NewReader(GammaBits(v))
		got, ok := GammaDecode(r)
		if !ok || got != v || r.Remaining() != 0 {
			t.Fatalf("round trip failed for %d: got %d ok=%v rem=%d", v, got, ok, r.Remaining())
		}
	})
}

func FuzzBitStringSliceConcat(f *testing.F) {
	f.Add([]byte{0x0F, 0xF0}, 3, 11)
	f.Fuzz(func(t *testing.T, data []byte, from, to int) {
		s := FromBytes(data)
		if from < 0 || to > s.Len() || from > to {
			return
		}
		sub := s.Slice(from, to)
		if sub.Len() != to-from {
			t.Fatalf("slice length %d want %d", sub.Len(), to-from)
		}
		// Concat of complementary slices reconstructs the original.
		full := s.Slice(0, from).Concat(sub).Concat(s.Slice(to, s.Len()))
		if !full.Equal(s) {
			t.Fatal("slice/concat did not reconstruct")
		}
	})
}
