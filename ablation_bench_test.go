package subgraph

// Ablation benchmarks for the design choices called out in DESIGN.md §4:
// the Phase II peeling constant, the congested-clique routing scheme
// (partition vs naive all-to-all), and the VF2 twin symmetry breaking.

import (
	"fmt"
	"math/rand"
	"testing"

	"subgraph/internal/cclique"
	"subgraph/internal/congest"
	"subgraph/internal/core"
	"subgraph/internal/graph"
)

// BenchmarkAblationPeelFactor sweeps the a in d = ⌈a·M/n⌉: smaller a
// shrinks the dominant Phase II budget linearly but weakens the peeling
// guarantee (a = 4 is the provable choice; see DESIGN.md §4.1).
func BenchmarkAblationPeelFactor(b *testing.B) {
	n := 800
	rng := rand.New(rand.NewSource(1))
	g, cyc := graph.PlantCycle(graph.GNP(n, 1.0/float64(n), rng), 4, rng)
	nw := congest.NewNetwork(g)
	coloring := core.PlantedColoring(nw, cyc, 1)
	for _, a := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("a=%d", a), func(b *testing.B) {
			var rep *core.EvenCycleReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = core.DetectEvenCycle(nw, core.EvenCycleConfig{
					K: 2, Coloring: coloring, PeelFactor: a,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Detected {
					b.Fatal("planted cycle missed")
				}
			}
			b.ReportMetric(float64(rep.Rounds), "rounds")
			b.ReportMetric(float64(rep.D), "d")
		})
	}
}

// BenchmarkAblationListing compares the partition-based K_3 listing
// (Θ(n^{1-2/s}) rounds, the paper-matching scheme) against the naive
// all-to-all baseline (Θ(n/log n) rounds, tiny constants).
func BenchmarkAblationListing(b *testing.B) {
	for _, n := range []int{32, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.GNP(n, 0.5, rng)
		b.Run(fmt.Sprintf("partition/n=%d", n), func(b *testing.B) {
			var res *cclique.ListResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cclique.ListCliques(g, 3, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(res.Stats.TotalBits), "bits")
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			var res *cclique.ListResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cclique.ListCliquesNaive(g, 3, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(res.Stats.TotalBits), "bits")
		})
	}
}

// BenchmarkAblationSummaryPrimitive measures the O(n) leader-election +
// BFS + convergecast primitive that justifies collect.go's scheduling
// convention.
func BenchmarkAblationSummaryPrimitive(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.GNP(n, 4.0/float64(n), rng)
			if !g.Connected() {
				b.Skip("disconnected sample")
			}
			nw := congest.NewNetwork(g)
			var rep *core.SummaryReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = core.ComputeNetworkSummary(nw, core.SummaryConfig{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Consistent {
					b.Fatal("inconsistent summary")
				}
			}
			b.ReportMetric(float64(rep.Rounds), "rounds")
		})
	}
}
