// cycledetect reproduces the Theorem 1.1 scaling story interactively:
// it sweeps n, runs the sublinear even-cycle detector and the linear
// baseline on planted-C4 graphs, and prints the measured rounds with the
// fitted exponents (E1 of EXPERIMENTS.md).
//
// Run with: go run ./examples/cycledetect
package main

import (
	"fmt"

	"subgraph/internal/experiments"
)

func main() {
	fmt.Println("Theorem 1.1: C_2k detection in O(n^{1-1/(k(k-1))}) rounds")
	fmt.Println()
	for _, k := range []int{2, 3} {
		ns := []int{100, 200, 400, 800, 1600}
		if k == 3 {
			ns = []int{100, 200, 400, 800}
		}
		rows := experiments.E1EvenCycleScaling(k, ns, 1)
		fmt.Print(experiments.FormatE1(rows))
		fmt.Println()
	}
	fmt.Println("The sublinear exponent approaches 1-1/(k(k-1)) from above as n grows")
	fmt.Println("(lower-order terms: the ⌈log n⌉ peeling rounds and additive slack).")
}
