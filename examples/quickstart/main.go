// Quickstart: detect a 6-cycle in a random network with the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"subgraph"
)

func main() {
	// A sparse random network with a planted C4 — the distributed nodes
	// must find it while exchanging only B bits per edge per round.
	rng := rand.New(rand.NewSource(42))
	g, cycle := subgraph.PlantCycle(subgraph.GNP(150, 0.012, rng), 4, rng)
	fmt.Printf("network: n=%d m=%d, planted C4 through vertices %v\n", g.N(), g.M(), cycle)

	nw := subgraph.NewNetwork(g)

	// Even cycles dispatch to the paper's sublinear algorithm
	// (Theorem 1.1). Each color-coding repetition finds a fixed 4-cycle
	// with probability ≥ 1/32, so 150 repetitions miss with probability
	// under 1%; every reject is sound.
	rep, err := subgraph.Detect(nw, subgraph.Cycle(4), subgraph.Options{Reps: 150, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Printf("algorithm : %s\n", rep.Algorithm)
	fmt.Printf("detected  : %v (ground truth %v)\n",
		rep.Detected, subgraph.ContainsSubgraph(subgraph.Cycle(4), g))
	fmt.Printf("rounds    : %d over all repetitions at B=%d bits/edge/round\n", rep.Rounds, rep.BandwidthBits)
	fmt.Printf("traffic   : %d bits in %d messages\n", rep.Stats.TotalBits, rep.Stats.TotalMessages)

	// Compare with the LOCAL model: constant rounds, unbounded messages.
	loc, err := subgraph.DetectLocal(nw, subgraph.Cycle(4), subgraph.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("LOCAL     : detected=%v in %d rounds, largest message %d bits\n",
		loc.Detected, loc.Rounds, loc.Stats.MaxEdgeBitsRound)
}
