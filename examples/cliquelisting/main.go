// cliquelisting demonstrates K_s listing in the Congested Clique model:
// the partition-based scheme whose ~n^{1-2/s} rounds match the shape of
// the paper's Ω̃(n^{1-2/s}) listing lower bound (Section 1.1), compared
// against the naive all-to-all baseline, plus the Lemma 1.3 counting
// bound on the outputs.
//
// Run with: go run ./examples/cliquelisting
package main

import (
	"fmt"
	"math"
	"math/rand"

	"subgraph/internal/cclique"
	"subgraph/internal/graph"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := graph.GNP(48, 0.5, rng)
	fmt.Printf("input graph: n=%d m=%d (every node initially knows only its own edges)\n\n", g.N(), g.M())

	for _, s := range []int{3, 4} {
		fmt.Printf("listing all K_%d copies:\n", s)

		part, err := cclique.ListCliques(g, s, 0)
		if err != nil {
			panic(err)
		}
		naive, err := cclique.ListCliquesNaive(g, s, 0)
		if err != nil {
			panic(err)
		}
		truth := g.CountCliques(s)
		fmt.Printf("  partition scheme: %5d cliques in %3d rounds (groups=%d, collectors=%d, B=%d bits/pair)\n",
			len(part.Cliques), part.Stats.Rounds, part.Groups, part.Collectors, part.B)
		fmt.Printf("  naive all-to-all: %5d cliques in %3d rounds (B=%d bits/pair)\n",
			len(naive.Cliques), naive.Stats.Rounds, naive.B)
		fmt.Printf("  centralized truth: %d copies; both correct: %v\n",
			truth, int64(len(part.Cliques)) == truth && int64(len(naive.Cliques)) == truth)

		bound := graph.KsUpperBound(int64(g.M()), s)
		fmt.Printf("  Lemma 1.3: %d ≤ m^{s/2} = %.0f (ratio %.4f)\n",
			truth, bound, float64(truth)/bound)
		fmt.Printf("  lower-bound shape: rounds/n^{1-2/s} = %.2f\n\n",
			float64(part.Stats.Rounds)/math.Pow(float64(g.N()), 1-2/float64(s)))
	}
	fmt.Println("The paper proves listing needs Ω̃(n^{1-2/s}) rounds even with O(log n)-bit")
	fmt.Println("messages between every pair; the partition scheme meets that shape.")
}
