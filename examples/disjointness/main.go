// disjointness walks through the Theorem 1.2 reduction: it builds the
// lower-bound family G_{k,n} from a set-disjointness instance, verifies
// Lemma 3.1 (a copy of H_k appears exactly when the inputs intersect),
// and simulates an H_k-detection algorithm between Alice and Bob, pricing
// every bit that crosses the O(k·n^{1/k})-edge cut.
//
// Run with: go run ./examples/disjointness
package main

import (
	"fmt"
	"math/rand"

	"subgraph/internal/comm"
	"subgraph/internal/graph"
	"subgraph/internal/lower"
)

func main() {
	const k, n = 2, 4
	rng := rand.New(rand.NewSource(3))

	fmt.Printf("H_%d: the pattern graph of Figure 1\n", k)
	hk := lower.BuildHk(k)
	fmt.Printf("  |V|=%d |E|=%d diameter=%d\n\n", hk.G.N(), hk.G.M(), hk.G.Diameter())

	for _, intersect := range []bool{true, false} {
		inst := comm.RandomDisjointness(n, 0.2, intersect, rng)
		fmt.Printf("instance over [%d]²: X∩Y ≠ ∅ is %v\n", n, inst.Intersects())

		g := lower.BuildGkn(k, inst)
		fmt.Printf("  G_{X,Y}: |V|=%d |E|=%d diameter=%d (Property 1: diameter 3)\n",
			g.G.N(), g.G.M(), g.G.Diameter())

		// Lemma 3.1, both directions.
		contains := graph.ContainsSubgraph(hk.G, g.G)
		fmt.Printf("  H_k ⊆ G_{X,Y}: %v (Lemma 3.1 expects %v)\n", contains, g.ExpectHk())
		if phi := g.PlantedEmbedding(hk); phi != nil {
			fmt.Printf("  canonical embedding verified: %v\n", graph.VerifyEmbedding(hk.G, g.G, phi))
		}

		// The two-party simulation.
		rep, err := lower.RunReduction(k, inst, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  cut=%d edges (= 6m+8 with m=%d)\n", rep.Cut, rep.M)
		fmt.Printf("  detector answered %v in %d rounds; Alice↔Bob traffic %d bits\n",
			rep.Detected, rep.Rounds, rep.BitsExchanged)
		fmt.Printf("  Theorem 1.2 at this size: any correct algorithm needs ≥ %.4f rounds\n",
			rep.ImpliedRoundLB)
		fmt.Printf("  (with the conservative 1/100 disjointness constant; the bound grows as n^{2-1/k})\n\n")
	}
}
