// foolingviews demonstrates the Theorem 4.1 adversary: a deterministic
// triangle-detection algorithm that hashes identifiers into too few bits
// is forced to reject a hexagon (a triangle-free graph) — while the same
// algorithm sending full identifiers resists the attack.
//
// Run with: go run ./examples/foolingviews
package main

import (
	"fmt"

	"subgraph/internal/lower"
)

func main() {
	const n = 12 // identifiers per namespace part; namespace size 3n

	fmt.Printf("namespace: 3×%d identifiers; enumerating all %d triangles per algorithm\n\n",
		n, n*n*n)

	for _, c := range []int{1, 2, 3, 6} {
		alg := lower.LowBitsTriangleAlgorithm(c)
		rep, err := lower.RunFoolingAdversary(alg, n)
		if err != nil {
			panic(err)
		}
		fmt.Printf("algorithm %-12s  C=%2d bits/node\n", alg.Name, rep.MaxNodeBits)
		fmt.Printf("  transcript classes: %5d   largest |S_t|: %d\n", rep.Classes, rep.LargestClass)
		fmt.Printf("  correct on all triangles (Claim 4.3): %v\n", rep.TrianglesAllReject)
		if rep.K32Found {
			fmt.Printf("  K^(3)(2) splice found → hexagon %v\n", rep.Hexagon)
			fmt.Printf("  hexagon FOOLED (wrongly rejected): %v\n", rep.Fooled)
		} else {
			fmt.Printf("  no K^(3)(2): transcripts too distinctive — adversary fails\n")
		}
		fmt.Println()
	}
	fmt.Println("Theorem 4.1: distinguishing a triangle from a hexagon deterministically")
	fmt.Println("requires Ω(log N) bits — the attack succeeds exactly in the low-C regime.")
}
