package subgraph

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Job-spec codec: the wire form of a detection job. The serve layer
// (internal/serve, cmd/subgraphd) accepts jobs as JSON documents whose
// options field is an OptionsSpec; this file is the single translation
// point between that wire form and the library's Options, so the server,
// the CLI tools, and tests all agree on what a job means — and so the
// canonical form used as a result-cache key is defined next to the codec
// it must stay in sync with.

// ParsePattern builds the pattern graph named by a compact spec string:
//
//	triangle | cycle:L | clique:S | path:L | star:L
//
// "triangle" is shorthand for cycle:3 (== clique:3). The returned graph
// is in canonical vertex labeling, so equal specs — and aliases like
// triangle vs cycle:3 — produce graphs with equal Digest().
func ParsePattern(spec string) (*Graph, error) {
	if spec == "triangle" {
		return Cycle(3), nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("subgraph: pattern must look like cycle:4 (or \"triangle\"), got %q", spec)
	}
	size, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("subgraph: bad pattern size in %q", spec)
	}
	var min int
	switch parts[0] {
	case "cycle":
		min = 3
	case "clique", "path", "star":
		min = 2
	default:
		return nil, fmt.Errorf("subgraph: unknown pattern kind %q", parts[0])
	}
	if size < min {
		return nil, fmt.Errorf("subgraph: pattern %q needs size ≥ %d", spec, min)
	}
	if size > 64 {
		return nil, fmt.Errorf("subgraph: pattern size %d exceeds the supported maximum 64", size)
	}
	switch parts[0] {
	case "cycle":
		return Cycle(size), nil
	case "clique":
		return Complete(size), nil
	case "path":
		return Path(size), nil
	default:
		return Star(size), nil
	}
}

// CrashSpec is the wire form of a crash-stop failure.
type CrashSpec struct {
	Vertex int `json:"vertex"`
	Round  int `json:"round"`
}

// TargetedDropSpec is the wire form of a targeted per-edge per-round drop.
type TargetedDropSpec struct {
	Round int `json:"round"`
	From  int `json:"from"`
	To    int `json:"to"`
}

// ThrottleSpec is the wire form of a delivery-capacity window.
type ThrottleSpec struct {
	FromRound int `json:"from_round"`
	ToRound   int `json:"to_round"`
	Bits      int `json:"bits"`
}

// FaultSpec is the wire form of a FaultPlan.
type FaultSpec struct {
	Seed         int64              `json:"seed,omitempty"`
	DropRate     float64            `json:"drop_rate,omitempty"`
	CorruptRate  float64            `json:"corrupt_rate,omitempty"`
	CorruptFlips int                `json:"corrupt_flips,omitempty"`
	Drops        []TargetedDropSpec `json:"drops,omitempty"`
	Crashes      []CrashSpec        `json:"crashes,omitempty"`
	Throttles    []ThrottleSpec     `json:"throttles,omitempty"`
}

// Plan converts the spec to a FaultPlan, or nil when the spec is nil or
// injects nothing (so Options.Faults stays nil on the fault-free path).
func (f *FaultSpec) Plan() *FaultPlan {
	if f == nil {
		return nil
	}
	p := &FaultPlan{
		Seed:         f.Seed,
		DropRate:     f.DropRate,
		CorruptRate:  f.CorruptRate,
		CorruptFlips: f.CorruptFlips,
	}
	for _, d := range f.Drops {
		p.Drops = append(p.Drops, TargetedDrop{Round: d.Round, From: d.From, To: d.To})
	}
	for _, c := range f.Crashes {
		p.Crashes = append(p.Crashes, Crash{Vertex: c.Vertex, Round: c.Round})
	}
	for _, th := range f.Throttles {
		p.Throttles = append(p.Throttles, Throttle{FromRound: th.FromRound, ToRound: th.ToRound, Bits: th.Bits})
	}
	if p.Empty() {
		return nil
	}
	return p
}

// FaultSpecOf is the inverse of FaultSpec.Plan (nil for nil/empty plans).
func FaultSpecOf(p *FaultPlan) *FaultSpec {
	if p == nil || p.Empty() {
		return nil
	}
	f := &FaultSpec{
		Seed:         p.Seed,
		DropRate:     p.DropRate,
		CorruptRate:  p.CorruptRate,
		CorruptFlips: p.CorruptFlips,
	}
	for _, d := range p.Drops {
		f.Drops = append(f.Drops, TargetedDropSpec{Round: d.Round, From: d.From, To: d.To})
	}
	for _, c := range p.Crashes {
		f.Crashes = append(f.Crashes, CrashSpec{Vertex: c.Vertex, Round: c.Round})
	}
	for _, th := range p.Throttles {
		f.Throttles = append(f.Throttles, ThrottleSpec{FromRound: th.FromRound, ToRound: th.ToRound, Bits: th.Bits})
	}
	return f
}

// OptionsSpec is the JSON wire form of Options. Deadlines travel as
// integer milliseconds; the Trace sink is a process-local object and has
// no wire form (the server attaches its own sinks).
type OptionsSpec struct {
	Reps       int        `json:"reps,omitempty"`
	Seed       int64      `json:"seed,omitempty"`
	Parallel   bool       `json:"parallel,omitempty"`
	DeadlineMs int64      `json:"deadline_ms,omitempty"`
	Resilient  bool       `json:"resilient,omitempty"`
	Faults     *FaultSpec `json:"faults,omitempty"`
}

// Options validates the spec and converts it to library Options.
func (s OptionsSpec) Options() (Options, error) {
	if s.Reps < 0 {
		return Options{}, fmt.Errorf("subgraph: negative reps %d", s.Reps)
	}
	if s.DeadlineMs < 0 {
		return Options{}, fmt.Errorf("subgraph: negative deadline_ms %d", s.DeadlineMs)
	}
	if f := s.Faults; f != nil {
		if f.DropRate < 0 || f.DropRate > 1 {
			return Options{}, fmt.Errorf("subgraph: drop_rate %v outside [0,1]", f.DropRate)
		}
		if f.CorruptRate < 0 || f.CorruptRate > 1 {
			return Options{}, fmt.Errorf("subgraph: corrupt_rate %v outside [0,1]", f.CorruptRate)
		}
	}
	return Options{
		Reps:      s.Reps,
		Seed:      s.Seed,
		Parallel:  s.Parallel,
		Faults:    s.Faults.Plan(),
		Deadline:  time.Duration(s.DeadlineMs) * time.Millisecond,
		Resilient: s.Resilient,
	}, nil
}

// OptionsSpecOf is the inverse codec direction: the wire form of o. The
// Trace field does not survive the round trip (it is not serializable);
// sub-millisecond deadline precision is rounded down.
func OptionsSpecOf(o Options) OptionsSpec {
	return OptionsSpec{
		Reps:       o.Reps,
		Seed:       o.Seed,
		Parallel:   o.Parallel,
		DeadlineMs: o.Deadline.Milliseconds(),
		Resilient:  o.Resilient,
		Faults:     FaultSpecOf(o.Faults),
	}
}

// Canonical returns the deterministic canonical encoding of the spec —
// the normalized JSON form with empty fault plans elided — suitable as a
// result-cache key component: two specs with the same Canonical() request
// bit-identical executions (the simulator is deterministic in (graph,
// pattern, options, seed), and the sequential and parallel engines are
// property-tested to produce identical runs, but Parallel is still kept in
// the key because the reported engine metadata differs).
func (s OptionsSpec) Canonical() string {
	if s.Faults != nil {
		norm := *s.Faults
		s.Faults = &norm
		if s.Faults.Plan() == nil {
			s.Faults = nil
		}
	}
	b, err := json.Marshal(s)
	if err != nil {
		// A fixed struct of scalars and slices cannot fail to marshal.
		panic("subgraph: canonicalizing OptionsSpec: " + err.Error())
	}
	return string(b)
}
