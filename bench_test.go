package subgraph

// The benchmark harness: one benchmark family per experiment of
// EXPERIMENTS.md (E1..E7; DESIGN.md §3 maps each to its theorem/figure).
// Each benchmark runs the experiment at a fixed size and reports the
// paper-relevant quantity (rounds, bits, error rates) via b.ReportMetric,
// so `go test -bench=. -benchmem` regenerates every series.

import (
	"fmt"
	"math/rand"
	"testing"

	"subgraph/internal/cclique"
	"subgraph/internal/comm"
	"subgraph/internal/congest"
	"subgraph/internal/core"
	"subgraph/internal/experiments"
	"subgraph/internal/graph"
	"subgraph/internal/lower"
)

// --- E1: Theorem 1.1, sublinear even-cycle detection ---

func benchmarkE1(b *testing.B, k, n int, sublinear bool) {
	rng := rand.New(rand.NewSource(int64(n)))
	base := graph.GNP(n, 1.0/float64(n), rng)
	g, cyc := graph.PlantCycle(base, 2*k, rng)
	nw := congest.NewNetwork(g)
	coloring := core.PlantedColoring(nw, cyc, 1)
	b.ResetTimer()
	var rounds, bits int64
	for i := 0; i < b.N; i++ {
		if sublinear {
			rep, err := core.DetectEvenCycle(nw, core.EvenCycleConfig{K: k, Coloring: coloring, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Detected {
				b.Fatal("planted cycle missed")
			}
			rounds, bits = int64(rep.Rounds), rep.Stats.TotalBits
		} else {
			rep, err := core.DetectCycleLinear(nw, core.LinearCycleConfig{CycleLen: 2 * k, Coloring: coloring, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if !rep.Detected {
				b.Fatal("planted cycle missed")
			}
			rounds, bits = int64(rep.Rounds), rep.Stats.TotalBits
		}
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(bits), "bits")
}

func BenchmarkE1EvenCycleSublinearK2(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchmarkE1(b, 2, n, true) })
	}
}

func BenchmarkE1EvenCycleSublinearK3(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchmarkE1(b, 3, n, true) })
	}
}

func BenchmarkE1EvenCycleLinearBaseline(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchmarkE1(b, 2, n, false) })
	}
}

// --- E2: Theorem 1.2, the G_{k,n} reduction ---

func BenchmarkE2LowerBoundFamily(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(fmt.Sprintf("k=2/n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			inst := comm.RandomDisjointness(n, 1.5/float64(n), true, rng)
			b.ResetTimer()
			var rep *lower.ReductionReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = lower.RunReduction(2, inst, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Detected {
					b.Fatal("intersecting instance undetected")
				}
			}
			b.ReportMetric(float64(rep.Cut), "cut-edges")
			b.ReportMetric(float64(rep.BitsExchanged), "AB-bits")
			b.ReportMetric(float64(rep.Rounds), "rounds")
		})
	}
}

// --- E3: Section 3.4, bipartite variant ---

func BenchmarkE3BipartiteFamily(b *testing.B) {
	for _, n := range []int{3, 5} {
		b.Run(fmt.Sprintf("k=2/n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			inst := comm.RandomDisjointness(n, 1.5/float64(n), true, rng)
			h := lower.BuildBipartiteHk(2, n)
			g := lower.BuildBipartiteGkn(2, inst)
			b.ResetTimer()
			var sim *comm.SimResult
			for i := 0; i < b.N; i++ {
				var err error
				sim, err = lower.RunBipartiteReduction(h, g, int64(i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sim.Cut), "cut-edges")
			b.ReportMetric(float64(sim.BitsExchanged), "AB-bits")
		})
	}
}

// --- E4: Theorem 4.1, the fooling adversary ---

func BenchmarkE4Fooling(b *testing.B) {
	for _, c := range []int{1, 2} {
		b.Run(fmt.Sprintf("n=8/c=%d", c), func(b *testing.B) {
			var rep *lower.FoolingReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = lower.RunFoolingAdversary(lower.LowBitsTriangleAlgorithm(c), 8)
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Fooled {
					b.Fatal("adversary failed in the low-C regime")
				}
			}
			b.ReportMetric(float64(rep.LargestClass), "largest-class")
			b.ReportMetric(float64(rep.MaxNodeBits), "C-bits")
		})
	}
}

// --- E5: Theorem 5.1, one-round bandwidth ---

func BenchmarkE5OneRound(b *testing.B) {
	n := 64
	for _, k := range []int{1, n / 2, n + 2} {
		b.Run(fmt.Sprintf("n=%d/K=%d", n, k), func(b *testing.B) {
			p := &lower.SamplingProtocol{K: k, IDBits: 18}
			var res *lower.OneRoundResult
			for i := 0; i < b.N; i++ {
				res = lower.EvaluateOneRound(p, n, 4000, int64(i))
			}
			b.ReportMetric(res.ErrorRate, "error")
			b.ReportMetric(res.MissRate, "miss")
			b.ReportMetric(float64(res.MessageBits), "B-bits")
		})
	}
}

// --- E6: Lemma 1.3 counting and congested-clique listing ---

func BenchmarkE6CliqueCounting(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := graph.GNP(60, 0.3, rng)
	for _, s := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			var count int64
			for i := 0; i < b.N; i++ {
				count = g.CountCliques(s)
			}
			b.ReportMetric(float64(count), "copies")
			b.ReportMetric(float64(count)/graph.KsUpperBound(int64(g.M()), s), "ratio-vs-bound")
		})
	}
}

func BenchmarkE6CliqueListing(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("s=3/n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.GNP(n, 0.5, rng)
			var res *cclique.ListResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cclique.ListCliques(g, 3, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
			b.ReportMetric(float64(len(res.Cliques)), "cliques")
		})
	}
}

// --- E7: LOCAL vs CONGEST separation ---

func BenchmarkE7Separation(b *testing.B) {
	n := 4
	rng := rand.New(rand.NewSource(7))
	inst := comm.RandomDisjointness(n, 1.5/float64(n), true, rng)
	g := lower.BuildGkn(2, inst)
	hk := lower.BuildHk(2)
	nw := congest.NewNetwork(g.G)
	b.Run("local", func(b *testing.B) {
		var rep *core.LocalReport
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = core.DetectLocal(nw, core.LocalConfig{H: hk.G})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rep.Rounds), "rounds")
		b.ReportMetric(float64(rep.MaxMessageBits), "max-msg-bits")
	})
	b.Run("congest", func(b *testing.B) {
		var rep *core.CollectReport
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = core.DetectCollect(nw, core.CollectConfig{H: hk.G})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rep.Rounds), "rounds")
		b.ReportMetric(float64(rep.Bandwidth), "B-bits")
	})
}

// --- E8: fault injection — detection under message loss ---

func BenchmarkE8DropSweep(b *testing.B) {
	drops := []float64{0, 0.3}
	b.Run("evencycle", func(b *testing.B) {
		var rows []experiments.E8Row
		for i := 0; i < b.N; i++ {
			rows = experiments.E8EvenCycleDropSweep(2, 60, drops, 4, int64(i))
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.PlainRate, "plain-rate")
		b.ReportMetric(last.ResilientRate, "resil-rate")
		b.ReportMetric(last.ResilientRounds/last.PlainRounds, "round-overhead")
	})
	b.Run("triangle", func(b *testing.B) {
		var rows []experiments.E8Row
		for i := 0; i < b.N; i++ {
			rows = experiments.E8TriangleDropSweep(24, 1.0/24, drops, 4, int64(i))
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.PlainRate, "plain-rate")
		b.ReportMetric(last.ResilientRate, "resil-rate")
		b.ReportMetric(last.ResilientBits/last.PlainBits, "bit-overhead")
	})
}

// --- simulator micro-benchmarks (engine throughput) ---

func BenchmarkSimulatorSequential(b *testing.B) {
	benchmarkEngine(b, false)
}

func BenchmarkSimulatorParallel(b *testing.B) {
	benchmarkEngine(b, true)
}

func benchmarkEngine(b *testing.B, parallel bool) {
	rng := rand.New(rand.NewSource(1))
	g := graph.GNP(300, 0.05, rng)
	nw := congest.NewNetwork(g)
	coloring := func(id congest.NodeID, rep int) int { return int(id) % 8 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.DetectCycleLinear(nw, core.LinearCycleConfig{
			CycleLen: 8, Coloring: coloring, Parallel: parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Keep the experiments import live for the exponent-fit sanity bench.
func BenchmarkE1ExponentFit(b *testing.B) {
	rows := experiments.E1EvenCycleScaling(2, []int{100, 200, 400}, 1)
	b.ResetTimer()
	var sub float64
	for i := 0; i < b.N; i++ {
		sub, _, _ = experiments.E1Exponents(rows)
	}
	b.ReportMetric(sub, "fitted-exponent")
}
