// Package subgraph is a library for distributed subgraph detection in the
// CONGEST model, reproducing "Possibilities and Impossibilities for
// Distributed Subgraph Detection" (Fischer, Gonen, Kuhn, Oshman;
// SPAA 2018).
//
// It bundles:
//
//   - a bit-exact CONGEST / LOCAL / broadcast-CONGEST simulator
//     (sequential and parallel engines) and a Congested Clique simulator;
//   - the paper's detection algorithms: the Theorem 1.1 sublinear
//     even-cycle detector, the O(n) color-coded-BFS cycle baseline,
//     constant-round tree detection, O(n)-round clique detection, generic
//     edge-collection detection, and LOCAL-model detection;
//   - the paper's lower-bound machinery: the H_k / G_{k,n} family with
//     the set-disjointness reduction (Theorem 1.2), its bipartite variant
//     (Section 3.4), the deterministic triangle-vs-hexagon fooling
//     adversary (Theorem 4.1), and the one-round randomized bandwidth
//     experiment (Theorem 5.1);
//   - K_s counting (Lemma 1.3) and congested-clique K_s listing.
//
// Quick start: build a topology with NewGraphBuilder or a generator, wrap
// it in a Network, and call Detect with a pattern — the dispatcher picks
// the best algorithm the paper provides for that pattern shape. The
// sub-packages under internal/ carry the full APIs; this facade re-exports
// the common entry points.
package subgraph

import (
	"fmt"
	"time"

	"subgraph/internal/cclique"
	"subgraph/internal/congest"
	"subgraph/internal/core"
	"subgraph/internal/graph"
	"subgraph/internal/obs"
)

// Re-exported core types. The aliases expose the full method sets of the
// underlying implementations.
type (
	// Graph is an immutable undirected simple graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
	// Network is a topology with an identifier assignment.
	Network = congest.Network
	// NodeID is a node identifier.
	NodeID = congest.NodeID
	// Stats aggregates communication measurements of a run.
	Stats = congest.Stats
	// FaultPlan is a seeded, declarative fault-injection configuration:
	// message drops (Bernoulli and targeted), payload corruption,
	// crash-stop failures, and delivery throttling.
	FaultPlan = congest.FaultPlan
	// Crash is a crash-stop failure entry of a FaultPlan.
	Crash = congest.Crash
	// TargetedDrop is a per-edge per-round drop entry of a FaultPlan.
	TargetedDrop = congest.TargetedDrop
	// Throttle is a delivery-capacity window entry of a FaultPlan.
	Throttle = congest.Throttle
	// ResilientConfig tunes the ack/retransmit decorator enabled by
	// Options.Resilient.
	ResilientConfig = congest.ResilientConfig
	// Tracer receives streaming run events (rounds, messages, faults,
	// node transitions, engine timings) from the simulator. Build one
	// with NewJSONLTracer / NewCollector, or combine several with
	// MultiTracer.
	Tracer = obs.Tracer
	// Collector is a Tracer aggregating events into metrics and a
	// machine-readable RunReport.
	Collector = obs.Collector
	// RunReport is the machine-readable run report built by a Collector.
	RunReport = obs.RunReport
	// JSONLTracer is a Tracer streaming events as JSON Lines.
	JSONLTracer = obs.JSONLTracer
	// JSONLOptions tunes a JSONLTracer (timing/payload omission).
	JSONLOptions = obs.JSONLOptions
)

// Observability constructors re-exported from internal/obs.
var (
	// NewJSONLTracer streams run events to w as JSON Lines.
	NewJSONLTracer = obs.NewJSONLTracer
	// NewJSONLTracerOptions is NewJSONLTracer with explicit options.
	NewJSONLTracerOptions = obs.NewJSONLTracerOptions
	// NewCollector aggregates run events into metrics and a RunReport.
	NewCollector = obs.NewCollector
	// MultiTracer fans events out to several tracers (nils skipped).
	MultiTracer = obs.Multi
)

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewNetwork wraps a graph with the identity identifier assignment.
func NewNetwork(g *Graph) *Network { return congest.NewNetwork(g) }

// NewNetworkWithIDs wraps a graph with an explicit identifier assignment.
func NewNetworkWithIDs(g *Graph, ids []NodeID) *Network {
	return congest.NewNetworkWithIDs(g, ids)
}

// Generators re-exported from the graph package.
var (
	// Cycle returns C_n.
	Cycle = graph.Cycle
	// Path returns the path on n vertices.
	Path = graph.Path
	// Complete returns K_n.
	Complete = graph.Complete
	// CompleteBipartite returns K_{a,b}.
	CompleteBipartite = graph.CompleteBipartite
	// Star returns K_{1,n}.
	Star = graph.Star
	// GNP returns an Erdős–Rényi random graph.
	GNP = graph.GNP
	// GNM returns a uniform random graph with exactly m edges.
	GNM = graph.GNM
	// RandomTree returns a uniform random labeled tree.
	RandomTree = graph.RandomTree
	// PlantCycle adds a cycle through random vertices.
	PlantCycle = graph.PlantCycle
	// PlantClique adds a clique on random vertices.
	PlantClique = graph.PlantClique
	// Relabel returns the isomorphic copy of a graph under a vertex
	// permutation — the metamorphic-testing helper: detection outcomes of
	// the exact detectors are invariant under Relabel.
	Relabel = graph.Relabel
)

// ContainsSubgraph is the centralized ground truth (Definition 1:
// subgraph containment, not induced).
func ContainsSubgraph(h, g *Graph) bool { return graph.ContainsSubgraph(h, g) }

// Edge-list serialization, re-exported for the CLI tools and users with
// on-disk topologies.
var (
	// ReadEdgeList parses "u v" lines (optional "n <count>" header).
	ReadEdgeList = graph.ReadEdgeList
	// WriteEdgeList writes the matching format.
	WriteEdgeList = graph.WriteEdgeList
)

// Options tunes Detect.
type Options struct {
	// Reps is the number of color-coding repetitions for the randomized
	// detectors (0 = a sensible default for the pattern).
	Reps int
	// Seed drives all randomness.
	Seed int64
	// Parallel selects the goroutine simulator engine.
	Parallel bool
	// Faults injects a fault plan into the simulator's delivery phase
	// (nil = perfectly reliable network).
	Faults *FaultPlan
	// Deadline aborts the run after a wall-clock budget (0 = none). On
	// expiry Detect returns the partial Report alongside an error
	// wrapping context.DeadlineExceeded.
	Deadline time.Duration
	// Resilient wraps every node in the ack/bounded-retransmit decorator
	// so detection tolerates message loss, at a constant-factor round and
	// bandwidth overhead. Supported for triangle and cycle patterns; other
	// patterns return an error.
	Resilient bool
	// Trace streams run events (rounds, messages, faults, node
	// transitions, timings) to an observability sink — a JSONL trace
	// file, a metrics Collector, or both via MultiTracer. Nil disables
	// instrumentation at zero cost to the simulator hot loop.
	Trace Tracer
}

// Report summarizes a detection run.
type Report struct {
	// Detected is the network's decision: true means some node rejected,
	// i.e. a copy of the pattern was found (or, for the even-cycle
	// detector, certified to exist by the edge bound).
	Detected bool
	// Algorithm names the dispatched algorithm.
	Algorithm string
	// Rounds is the number of CONGEST rounds used.
	Rounds int
	// BandwidthBits is the per-edge bandwidth the algorithm ran under.
	BandwidthBits int
	// Stats holds the underlying simulator measurements.
	Stats Stats
}

// Detect decides whether the network contains a copy of pattern h,
// dispatching on the pattern's shape:
//
//   - trees → constant-round color-coding DP;
//   - triangles → the exact Δ-round neighbor-exchange detector;
//   - even cycles C_{2k} → the Theorem 1.1 sublinear algorithm;
//   - odd cycles → the O(n) pipelined color-BFS baseline;
//   - cliques K_s → the O(n) neighborhood-exchange detector;
//   - anything else → the O(m+n) edge-collection detector (exact).
//
// The randomized detectors are one-sided: a "detected" answer is always
// correct, a "not detected" answer is correct with probability growing in
// Options.Reps.
func Detect(nw *Network, h *Graph, opts Options) (*Report, error) {
	if h == nil || h.N() == 0 {
		return nil, fmt.Errorf("subgraph: empty pattern")
	}
	var resilient *ResilientConfig
	if opts.Resilient {
		resilient = &ResilientConfig{}
	}
	switch {
	case h.IsTree():
		if resilient != nil {
			return nil, fmt.Errorf("subgraph: resilient mode is not supported for tree patterns")
		}
		reps := opts.Reps
		if reps <= 0 {
			reps = defaultTreeReps(h.N())
		}
		r, err := core.DetectTree(nw, core.TreeConfig{
			Tree: h, Reps: reps, Seed: opts.Seed, Parallel: opts.Parallel,
			Faults: opts.Faults, Deadline: opts.Deadline, Tracer: opts.Trace,
		})
		if r == nil {
			return nil, err
		}
		return &Report{Detected: r.Detected, Algorithm: "tree-color-coding",
			Rounds: r.Rounds, BandwidthBits: r.Bandwidth, Stats: r.Stats}, err

	case h.N() == 3 && h.M() == 3:
		// Triangles: both exact detectors are O(log n)-bandwidth; pick
		// the cheaper round budget — Δ (neighbor exchange) vs √(2m)
		// (degree split). Resilient mode forces neighbor exchange, the
		// variant the decorator supports.
		delta := nw.G.MaxDegree()
		if resilient != nil || float64(delta*delta) <= float64(2*nw.G.M()) {
			r, err := core.DetectTriangle(nw, core.TriangleConfig{
				Seed: opts.Seed, Parallel: opts.Parallel,
				Faults: opts.Faults, Deadline: opts.Deadline, Resilient: resilient, Tracer: opts.Trace,
			})
			if r == nil {
				return nil, err
			}
			return &Report{Detected: r.Detected, Algorithm: "triangle-neighbor-exchange",
				Rounds: r.Rounds, BandwidthBits: r.Bandwidth, Stats: r.Stats}, err
		}
		r, err := core.DetectTriangleSplit(nw, core.TriangleSplitConfig{
			Seed: opts.Seed, Parallel: opts.Parallel,
			Faults: opts.Faults, Deadline: opts.Deadline, Tracer: opts.Trace,
		})
		if r == nil {
			return nil, err
		}
		return &Report{Detected: r.Detected, Algorithm: "triangle-degree-split",
			Rounds: r.Rounds, BandwidthBits: r.Bandwidth, Stats: r.Stats}, err

	case isCycle(h):
		L := h.N()
		if L%2 == 0 {
			reps := opts.Reps
			if reps <= 0 {
				reps = 1
			}
			r, err := core.DetectEvenCycle(nw, core.EvenCycleConfig{
				K: L / 2, PhaseIReps: reps, PhaseIIReps: reps,
				Seed: opts.Seed, Parallel: opts.Parallel,
				Faults: opts.Faults, Deadline: opts.Deadline, Resilient: resilient, Tracer: opts.Trace,
			})
			if r == nil {
				return nil, err
			}
			return &Report{Detected: r.Detected, Algorithm: "even-cycle-sublinear",
				Rounds: r.Rounds, BandwidthBits: r.Bandwidth, Stats: r.Stats}, err
		}
		reps := opts.Reps
		if reps <= 0 {
			reps = core.DefaultCycleReps(L)
		}
		r, err := core.DetectCycleLinear(nw, core.LinearCycleConfig{
			CycleLen: L, Reps: reps, Seed: opts.Seed, Parallel: opts.Parallel,
			Faults: opts.Faults, Deadline: opts.Deadline, Resilient: resilient, Tracer: opts.Trace,
		})
		if r == nil {
			return nil, err
		}
		return &Report{Detected: r.Detected, Algorithm: "cycle-linear",
			Rounds: r.Rounds, BandwidthBits: r.Bandwidth, Stats: r.Stats}, err

	case isClique(h):
		if resilient != nil {
			return nil, fmt.Errorf("subgraph: resilient mode is not supported for clique patterns")
		}
		r, err := core.DetectClique(nw, core.CliqueConfig{
			S: h.N(), Seed: opts.Seed, Parallel: opts.Parallel,
			Faults: opts.Faults, Deadline: opts.Deadline, Tracer: opts.Trace,
		})
		if r == nil {
			return nil, err
		}
		return &Report{Detected: r.Detected, Algorithm: "clique-linear",
			Rounds: r.Rounds, BandwidthBits: r.Bandwidth, Stats: r.Stats}, err

	default:
		if resilient != nil {
			return nil, fmt.Errorf("subgraph: resilient mode is not supported for general patterns")
		}
		r, err := core.DetectCollect(nw, core.CollectConfig{
			H: h, Seed: opts.Seed, Parallel: opts.Parallel,
			Faults: opts.Faults, Deadline: opts.Deadline, Tracer: opts.Trace,
		})
		if r == nil {
			return nil, err
		}
		return &Report{Detected: r.Detected, Algorithm: "edge-collection",
			Rounds: r.Rounds, BandwidthBits: r.Bandwidth, Stats: r.Stats}, err
	}
}

// DetectLocal decides pattern containment in the LOCAL model (unbounded
// messages, O(|h|) rounds) — exact and deterministic.
func DetectLocal(nw *Network, h *Graph, opts Options) (*Report, error) {
	r, err := core.DetectLocal(nw, core.LocalConfig{
		H: h, Seed: opts.Seed, Parallel: opts.Parallel,
		Faults: opts.Faults, Deadline: opts.Deadline, Tracer: opts.Trace,
	})
	if r == nil {
		return nil, err
	}
	return &Report{Detected: r.Detected, Algorithm: "local-ball-collection",
		Rounds: r.Rounds, BandwidthBits: 0, Stats: r.Stats}, err
}

// CliqueListing is the outcome of congested-clique K_s listing.
type CliqueListing struct {
	// Cliques lists every K_s exactly once, vertices ascending.
	Cliques [][]int
	// Rounds is the congested-clique round count (~n^{1-2/s} on dense
	// inputs, matching the paper's Ω̃(n^{1-2/s}) listing lower bound).
	Rounds int
	// BandwidthBits is the per-pair bandwidth used (Θ(log n) by default).
	BandwidthBits int
}

// ListCliques lists all K_s copies of g in the Congested Clique model
// (all-to-all communication, bandwidthBits per ordered pair per round;
// pass 0 for the Θ(log n) default), using the partition-based
// Dolev–Lenzen–Peled scheme generalized to K_s.
func ListCliques(g *Graph, s int, bandwidthBits int) (*CliqueListing, error) {
	res, err := cclique.ListCliques(g, s, bandwidthBits)
	if err != nil {
		return nil, err
	}
	return &CliqueListing{
		Cliques:       res.Cliques,
		Rounds:        res.Stats.Rounds,
		BandwidthBits: res.B,
	}, nil
}

// isCycle reports whether h is C_L for some L ≥ 3.
func isCycle(h *Graph) bool {
	if h.N() < 3 || h.M() != h.N() || !h.Connected() {
		return false
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) != 2 {
			return false
		}
	}
	return true
}

// isClique reports whether h is K_s for some s ≥ 2.
func isClique(h *Graph) bool {
	n := h.N()
	return n >= 2 && h.M() == n*(n-1)/2
}

// defaultTreeReps caps the t^t amplification at something simulable.
func defaultTreeReps(t int) int {
	reps := 1
	for i := 0; i < t; i++ {
		reps *= t
		if reps >= 4096 {
			return 4096
		}
	}
	return reps
}
