#!/usr/bin/env bash
# End-to-end smoke test for the subgraphd cluster, run by CI and
# `make cluster-smoke`:
#
#   1. build subgraphd;
#   2. start two worker daemons on ephemeral ports, then a router
#      fronting them (digest routing, shared result cache, replication 2);
#   3. run the self-check THROUGH the router: health, upload dedup +
#      digest cross-check, and a triangle job byte-identical to the
#      library call — proving the proxied surface is indistinguishable
#      from a single daemon;
#   4. fire a loadgen burst at the router and SIGKILL one worker
#      mid-run: every admitted job must still complete (the router
#      re-dispatches the dead worker's jobs to the surviving replica;
#      loadgen exits non-zero if any job errors);
#   5. SIGTERM the router and the surviving worker and require clean
#      drains (exit 0) from both.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

wait_port() { # portfile -> prints bound address
  for _ in $(seq 1 100); do
    [ -s "$1" ] && break
    sleep 0.1
  done
  head -n1 "$1" | tr -d '\n'
}

echo "== build"
go build -o "$workdir/subgraphd" ./cmd/subgraphd

echo "== start 2 workers (ephemeral ports)"
for i in 0 1; do
  "$workdir/subgraphd" -listen 127.0.0.1:0 -portfile "$workdir/w$i.port" \
    -node-name "w$i" -workers 2 2>"$workdir/w$i.log" &
  pids+=($!)
  eval "worker$i=$!"
done
w0=$(wait_port "$workdir/w0.port")
w1=$(wait_port "$workdir/w1.port")
if [ -z "$w0" ] || [ -z "$w1" ]; then
  echo "a worker never wrote its port file" >&2
  cat "$workdir"/w*.log >&2
  exit 1
fi
echo "   workers on $w0, $w1"

echo "== start router over both workers (replication 2)"
"$workdir/subgraphd" -router -members "http://$w0,http://$w1" \
  -replication 2 -listen 127.0.0.1:0 -portfile "$workdir/router.port" \
  -node-name router 2>"$workdir/router.log" &
pids+=($!)
router=$!
addr=$(wait_port "$workdir/router.port")
if [ -z "$addr" ]; then
  echo "router never wrote its port file" >&2
  cat "$workdir/router.log" >&2
  exit 1
fi
echo "   router pid $router on $addr"

echo "== healthz reports the router role"
health=$(curl -fsS "http://$addr/healthz")
echo "   $health"
echo "$health" | grep -q '"role":"router"' || {
  echo "router /healthz missing role=router" >&2
  exit 1
}

echo "== selfcheck through the router (byte-identical Stats)"
if ! "$workdir/subgraphd" -selfcheck "http://$addr"; then
  echo "selfcheck via router failed; router log:" >&2
  cat "$workdir/router.log" >&2
  exit 1
fi

echo "== loadgen burst with a worker crash mid-run"
"$workdir/subgraphd" -loadgen -target "http://$addr" \
  -jobs 200 -concurrency 8 -seed 1 -out "$workdir/cluster_loadgen.json" \
  2>"$workdir/loadgen.log" &
lgpid=$!
sleep 0.7
echo "   SIGKILL worker w1 (pid $worker1)"
kill -KILL "$worker1" 2>/dev/null || true
status=0
wait "$lgpid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "loadgen failed ($status) after the worker crash; logs:" >&2
  tail -n 40 "$workdir/loadgen.log" >&2
  tail -n 40 "$workdir/router.log" >&2
  exit 1
fi
grep -q '"workload"' "$workdir/cluster_loadgen.json" || {
  echo "loadgen wrote no report" >&2
  exit 1
}

echo "== SIGTERM drain (router, then surviving worker)"
kill -TERM "$router"
status=0
wait "$router" || status=$?
if [ "$status" -ne 0 ]; then
  echo "router exited $status after SIGTERM, want 0 (clean drain)" >&2
  cat "$workdir/router.log" >&2
  exit 1
fi
grep -q "drained cleanly" "$workdir/router.log" || {
  echo "router log missing drain summary" >&2
  cat "$workdir/router.log" >&2
  exit 1
}
kill -TERM "$worker0"
status=0
wait "$worker0" || status=$?
if [ "$status" -ne 0 ]; then
  echo "surviving worker exited $status after SIGTERM, want 0" >&2
  cat "$workdir/w0.log" >&2
  exit 1
fi
echo "== cluster smoke passed"
