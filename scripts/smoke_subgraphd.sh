#!/usr/bin/env bash
# End-to-end smoke test for the subgraphd daemon, run by CI and `make smoke`:
#
#   1. build subgraphd;
#   2. start it on an ephemeral port with a 1-worker/1-deep queue;
#   3. run the self-check against it: health, upload dedup + digest
#      cross-check, a triangle job byte-identical to the library call,
#      a cache hit on resubmission, and a 429 from queue saturation;
#   4. SIGTERM the daemon and require a clean drain (exit 0).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/subgraphd" ./cmd/subgraphd

echo "== start (ephemeral port, -workers 1 -queue 1)"
"$workdir/subgraphd" -listen 127.0.0.1:0 -portfile "$workdir/port" \
  -workers 1 -queue 1 2>"$workdir/serve.log" &
daemon=$!

for _ in $(seq 1 100); do
  [ -s "$workdir/port" ] && break
  sleep 0.1
done
addr=$(head -n1 "$workdir/port" | tr -d '\n')
if [ -z "$addr" ]; then
  echo "daemon never wrote its port file" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
echo "   daemon pid $daemon on $addr"

echo "== selfcheck (with queue-saturation assertion)"
if ! "$workdir/subgraphd" -selfcheck "http://$addr" -saturate; then
  echo "selfcheck failed; daemon log:" >&2
  cat "$workdir/serve.log" >&2
  kill "$daemon" 2>/dev/null || true
  exit 1
fi

echo "== SIGTERM drain"
kill -TERM "$daemon"
status=0
wait "$daemon" || status=$?
cat "$workdir/serve.log"
if [ "$status" -ne 0 ]; then
  echo "daemon exited $status after SIGTERM, want 0 (clean drain)" >&2
  exit 1
fi
grep -q "drained cleanly" "$workdir/serve.log" || {
  echo "daemon log missing drain summary" >&2
  exit 1
}
echo "== smoke passed"
