#!/usr/bin/env bash
# End-to-end smoke test for the evolving-graph surface, run by CI and
# `make delta-smoke`:
#
#   1. build subgraphd and start it on an ephemeral port;
#   2. upload a 60-cycle and prime its clique:3 count cache with one
#      count job;
#   3. POST a delta (two chords) with clique:3 + cycle:4 watches: the
#      response must record lineage, report the delta under the churn
#      threshold (incremental), forward the primed cache entry, and
#      answer both watches correctly (2 triangles, a C4 appears);
#   4. POST a second, insert-only delta: both watches must now answer
#      incrementally (cycle:4 via the delete-free dirty rule);
#   5. a count job on the final child must hit the forwarded cache
#      (cached: true, no kernel run) and agree with the watch count;
#   6. a delta deleting a non-edge must bounce with 409 and the typed
#      reason delete_missing_edge, leaving the stored graphs untouched;
#   7. SIGTERM the daemon and require a clean drain (exit 0).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/subgraphd" ./cmd/subgraphd

echo "== start (ephemeral port)"
"$workdir/subgraphd" -listen 127.0.0.1:0 -portfile "$workdir/port" \
  -workers 2 2>"$workdir/serve.log" &
daemon=$!
for _ in $(seq 1 100); do
  [ -s "$workdir/port" ] && break
  sleep 0.1
done
addr=$(head -n1 "$workdir/port" | tr -d '\n')
if [ -z "$addr" ]; then
  echo "daemon never wrote its port file" >&2
  cat "$workdir/serve.log" >&2
  exit 1
fi
base="http://$addr"
echo "   daemon pid $daemon on $addr"

fail() {
  echo "FAIL: $*" >&2
  cat "$workdir/serve.log" >&2
  kill "$daemon" 2>/dev/null || true
  exit 1
}

# jget FILE EXPR — evaluate a python expression against parsed JSON `d`.
jget() {
  python3 -c "import json,sys; d=json.load(open('$1')); print($2)"
}

echo "== upload base graph (C60)"
for i in $(seq 0 59); do echo "$i $(( (i + 1) % 60 ))"; done >"$workdir/c60.txt"
curl -fsS -o "$workdir/up.json" --data-binary @"$workdir/c60.txt" "$base/v1/graphs"
parent=$(jget "$workdir/up.json" "d['digest']")
[ "$(jget "$workdir/up.json" "d['m']")" = 60 ] || fail "base upload m != 60"

echo "== prime the parent's clique:3 count cache"
curl -fsS -o "$workdir/job0.json" -H 'Content-Type: application/json' \
  -d "{\"graph\":\"$parent\",\"pattern\":\"clique:3\",\"mode\":\"count\"}" "$base/v1/jobs"
job0=$(jget "$workdir/job0.json" "d['id']")
for _ in $(seq 1 100); do
  curl -fsS -o "$workdir/job0.json" "$base/v1/jobs/$job0"
  [ "$(jget "$workdir/job0.json" "d['state']")" = done ] && break
  sleep 0.1
done
[ "$(jget "$workdir/job0.json" "d['state']")" = done ] || fail "primer job never finished"
[ "$(jget "$workdir/job0.json" "d['result']['count']")" = 0 ] || fail "C60 has a triangle?"

echo "== delta 1: two chords, watched (clique:3 + cycle:4)"
status=$(curl -sS -o "$workdir/d1.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' \
  -d '{"insert":[[0,2],[0,3]],"watch":["clique:3","cycle:4"]}' \
  "$base/v1/graphs/$parent/delta")
[ "$status" = 201 ] || fail "delta 1 status $status, want 201"
child1=$(jget "$workdir/d1.json" "d['digest']")
[ "$(jget "$workdir/d1.json" "d['parent']")" = "$parent" ] || fail "delta 1 lineage missing"
[ "$(jget "$workdir/d1.json" "d['incremental']")" = True ] || fail "delta 1 not incremental"
[ "$(jget "$workdir/d1.json" "d['forwarded_cache_entries']")" = 1 ] || fail "delta 1 forwarded nothing"
[ "$(jget "$workdir/d1.json" "d['watch'][0]['count']")" = 2 ] || fail "chords make 2 triangles"
[ "$(jget "$workdir/d1.json" "d['watch'][0]['incremental']")" = True ] || fail "clique watch not incremental"
[ "$(jget "$workdir/d1.json" "d['watch'][1]['detected']")" = True ] || fail "C4 not detected"

echo "== delta 2: insert-only, both watches incremental"
status=$(curl -sS -o "$workdir/d2.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' \
  -d '{"insert":[[30,32]],"watch":["clique:3","cycle:4"]}' \
  "$base/v1/graphs/$child1/delta")
[ "$status" = 201 ] || fail "delta 2 status $status, want 201"
child2=$(jget "$workdir/d2.json" "d['digest']")
[ "$(jget "$workdir/d2.json" "d['watch'][0]['count']")" = 3 ] || fail "third chord makes 3 triangles"
[ "$(jget "$workdir/d2.json" "d['watch'][0]['incremental']")" = True ] || fail "clique watch 2 not incremental"
[ "$(jget "$workdir/d2.json" "d['watch'][1]['detected']")" = True ] || fail "C4 lost"
[ "$(jget "$workdir/d2.json" "d['watch'][1]['incremental']")" = True ] || fail "cycle watch not incremental"

echo "== count job on the final child hits the forwarded cache"
curl -fsS -o "$workdir/job1.json" -H 'Content-Type: application/json' \
  -d "{\"graph\":\"$child2\",\"pattern\":\"clique:3\",\"mode\":\"count\"}" "$base/v1/jobs"
job1=$(jget "$workdir/job1.json" "d['id']")
for _ in $(seq 1 100); do
  curl -fsS -o "$workdir/job1.json" "$base/v1/jobs/$job1"
  [ "$(jget "$workdir/job1.json" "d['state']")" = done ] && break
  sleep 0.1
done
[ "$(jget "$workdir/job1.json" "d.get('cached', False)")" = True ] || fail "forwarded entry missed"
[ "$(jget "$workdir/job1.json" "d['result']['count']")" = 3 ] || fail "cached count disagrees with watch"

echo "== conflicting delta bounces with 409 + typed reason"
status=$(curl -sS -o "$workdir/bad.json" -w '%{http_code}' \
  -H 'Content-Type: application/json' \
  -d '{"delete":[[5,7]]}' "$base/v1/graphs/$child2/delta")
[ "$status" = 409 ] || fail "conflict status $status, want 409"
[ "$(jget "$workdir/bad.json" "d['reason']")" = delete_missing_edge ] || fail "wrong conflict reason"
curl -fsS -o "$workdir/info.json" "$base/v1/graphs/$child2"
[ "$(jget "$workdir/info.json" "d['m']")" = 63 ] || fail "rejected delta mutated the graph"

echo "== SIGTERM drain"
kill -TERM "$daemon"
drain=0
wait "$daemon" || drain=$?
cat "$workdir/serve.log"
[ "$drain" -eq 0 ] || fail "daemon exited $drain after SIGTERM, want 0"
grep -q "drained cleanly" "$workdir/serve.log" || fail "daemon log missing drain summary"
echo "== delta smoke passed"
