// congestsim runs a distributed subgraph detector on a generated network
// and reports its decision and communication cost.
//
// Examples:
//
//	congestsim -graph gnp -n 100 -p 0.05 -pattern cycle:4 -reps 100
//	congestsim -graph complete -n 30 -pattern clique:5
//	congestsim -graph planted-cycle -n 200 -cycle 6 -pattern cycle:6 -model local
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"subgraph"
)

func main() {
	var (
		file      = flag.String("file", "", "load the topology from an edge-list file instead of generating one")
		graphKind = flag.String("graph", "gnp", "topology: gnp | complete | cycle | path | tree | planted-cycle | planted-clique")
		n         = flag.Int("n", 100, "number of nodes")
		p         = flag.Float64("p", 0.05, "edge probability for gnp / background of planted graphs")
		cycleLen  = flag.Int("cycle", 4, "planted cycle length (graph=planted-cycle)")
		cliqueSz  = flag.Int("clique", 4, "planted clique size (graph=planted-clique)")
		pattern   = flag.String("pattern", "cycle:4", "pattern: cycle:L | clique:S | path:L | star:L")
		model     = flag.String("model", "congest", "model: congest | local")
		reps      = flag.Int("reps", 0, "color-coding repetitions (0 = default)")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Bool("parallel", false, "use the parallel simulator engine")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *subgraph.Graph
	var err error
	if *file != "" {
		g, err = loadGraph(*file)
		*graphKind = *file
	} else {
		g, err = buildGraph(*graphKind, *n, *p, *cycleLen, *cliqueSz, rng)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h, err := buildPattern(*pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("network : %s n=%d m=%d\n", *graphKind, g.N(), g.M())
	fmt.Printf("pattern : %s (|V|=%d |E|=%d)\n", *pattern, h.N(), h.M())

	nw := subgraph.NewNetwork(g)
	opts := subgraph.Options{Reps: *reps, Seed: *seed, Parallel: *parallel}
	var rep *subgraph.Report
	if *model == "local" {
		rep, err = subgraph.DetectLocal(nw, h, opts)
	} else {
		rep, err = subgraph.Detect(nw, h, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("algorithm: %s\n", rep.Algorithm)
	fmt.Printf("detected : %v\n", rep.Detected)
	fmt.Printf("rounds   : %d\n", rep.Rounds)
	fmt.Printf("bandwidth: %d bits/edge/round (0 = unbounded)\n", rep.BandwidthBits)
	fmt.Printf("traffic  : %d bits, %d messages, max %d bits on one edge in a round\n",
		rep.Stats.TotalBits, rep.Stats.TotalMessages, rep.Stats.MaxEdgeBitsRound)
	fmt.Printf("truth    : %v (centralized check)\n", subgraph.ContainsSubgraph(h, g))
}

func loadGraph(path string) (*subgraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return subgraph.ReadEdgeList(f)
}

func buildGraph(kind string, n int, p float64, cycleLen, cliqueSz int, rng *rand.Rand) (*subgraph.Graph, error) {
	switch kind {
	case "gnp":
		return subgraph.GNP(n, p, rng), nil
	case "complete":
		return subgraph.Complete(n), nil
	case "cycle":
		return subgraph.Cycle(n), nil
	case "path":
		return subgraph.Path(n), nil
	case "tree":
		return subgraph.RandomTree(n, rng), nil
	case "planted-cycle":
		g, _ := subgraph.PlantCycle(subgraph.GNP(n, p, rng), cycleLen, rng)
		return g, nil
	case "planted-clique":
		g, _ := subgraph.PlantClique(subgraph.GNP(n, p, rng), cliqueSz, rng)
		return g, nil
	}
	return nil, fmt.Errorf("unknown graph kind %q", kind)
}

func buildPattern(spec string) (*subgraph.Graph, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("pattern must look like cycle:4, got %q", spec)
	}
	size, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("bad pattern size in %q", spec)
	}
	switch parts[0] {
	case "cycle":
		return subgraph.Cycle(size), nil
	case "clique":
		return subgraph.Complete(size), nil
	case "path":
		return subgraph.Path(size), nil
	case "star":
		return subgraph.Star(size), nil
	}
	return nil, fmt.Errorf("unknown pattern kind %q", parts[0])
}
