// congestsim runs a distributed subgraph detector on a generated network
// and reports its decision and communication cost.
//
// Examples:
//
//	congestsim -graph gnp -n 100 -p 0.05 -pattern cycle:4 -reps 100
//	congestsim -graph complete -n 30 -pattern clique:5
//	congestsim -graph planted-cycle -n 200 -cycle 6 -pattern cycle:6 -model local
//
// Observability: -tracefile streams every run event as JSON Lines,
// -report writes a machine-readable metrics report, and the
// -cpuprofile / -memprofile / -trace / -pprof flags wire Go's profilers:
//
//	congestsim -graph gnp -n 200 -pattern cycle:4 -seed 7 \
//	    -tracefile run.jsonl -report report.json -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"subgraph"
	"subgraph/internal/obs"
)

func main() {
	os.Exit(run())
}

// run is main's body; returning (instead of os.Exit-ing) lets the
// deferred profile/trace finalizers flush before the process exits.
func run() int {
	var (
		file      = flag.String("file", "", "load the topology from an edge-list file instead of generating one")
		graphKind = flag.String("graph", "gnp", "topology: gnp | complete | cycle | path | tree | planted-cycle | planted-clique")
		n         = flag.Int("n", 100, "number of nodes")
		p         = flag.Float64("p", 0.05, "edge probability for gnp / background of planted graphs")
		cycleLen  = flag.Int("cycle", 4, "planted cycle length (graph=planted-cycle)")
		cliqueSz  = flag.Int("clique", 4, "planted clique size (graph=planted-clique)")
		pattern   = flag.String("pattern", "cycle:4", "pattern: triangle | cycle:L | clique:S | path:L | star:L")
		model     = flag.String("model", "congest", "model: congest | local")
		reps      = flag.Int("reps", 0, "color-coding repetitions (0 = default)")
		seed      = flag.Int64("seed", 1, "random seed")
		parallel  = flag.Bool("parallel", false, "use the parallel simulator engine")
		drop      = flag.Float64("drop", 0, "fault injection: per-message drop probability in [0,1]")
		corrupt   = flag.Float64("corrupt", 0, "fault injection: per-message bit-flip probability in [0,1]")
		crash     = flag.String("crash", "", "fault injection: crash-stop failures as \"v@r,v@r\" (vertex v crashes at round r)")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget for the run (0 = none); on expiry the partial result is printed")
		resilient = flag.Bool("resilient", false, "wrap nodes in the ack/retransmit decorator to tolerate message loss")
		tracefile = flag.String("tracefile", "", "stream run events to this file as JSON Lines")
		report    = flag.String("report", "", "write a JSON run report (metrics, per-round series) to this file")
		dump      = flag.String("dump", "", "write the (generated or loaded) topology to this edge-list file and continue")
	)
	var profiles obs.Profiles
	profiles.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProfiles, err := profiles.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	rng := rand.New(rand.NewSource(*seed))
	var g *subgraph.Graph
	if *file != "" {
		g, err = loadGraph(*file)
		*graphKind = *file
	} else {
		g, err = buildGraph(*graphKind, *n, *p, *cycleLen, *cliqueSz, rng)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	h, err := buildPattern(*pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *dump != "" {
		if err := dumpGraph(*dump, g); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("dump    : wrote %s\n", *dump)
	}

	fmt.Printf("network : %s n=%d m=%d\n", *graphKind, g.N(), g.M())
	fmt.Printf("pattern : %s (|V|=%d |E|=%d)\n", *pattern, h.N(), h.M())

	faults, err := buildFaultPlan(*seed, *drop, *corrupt, *crash)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Observability sinks: a streaming JSONL trace and/or a metrics
	// collector for the JSON run report, fanned out from one Tracer.
	var trace *subgraph.JSONLTracer
	var collector *subgraph.Collector
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		trace = subgraph.NewJSONLTracer(f)
		defer func() {
			if err := trace.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tracefile: %v\n", err)
			}
		}()
	}
	if *report != "" {
		collector = subgraph.NewCollector()
	}

	nw := subgraph.NewNetwork(g)
	opts := subgraph.Options{
		Reps: *reps, Seed: *seed, Parallel: *parallel,
		Faults: faults, Deadline: *deadline, Resilient: *resilient,
	}
	if trace != nil || collector != nil {
		var tracers []subgraph.Tracer
		if trace != nil {
			tracers = append(tracers, trace)
		}
		if collector != nil {
			tracers = append(tracers, collector)
		}
		opts.Trace = subgraph.MultiTracer(tracers...)
	}
	var rep *subgraph.Report
	if *model == "local" {
		rep, err = subgraph.DetectLocal(nw, h, opts)
	} else {
		rep, err = subgraph.Detect(nw, h, opts)
	}
	if rep == nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err != nil {
		// Deadline / cancellation: report the partial result.
		fmt.Printf("aborted  : %v\n", err)
	}
	fmt.Printf("algorithm: %s\n", rep.Algorithm)
	fmt.Printf("detected : %v\n", rep.Detected)
	fmt.Printf("bandwidth: %d bits/edge/round (0 = unbounded)\n", rep.BandwidthBits)
	fmt.Print(rep.Stats.Summary())
	fmt.Printf("truth    : %v (centralized check)\n", subgraph.ContainsSubgraph(h, g))

	if collector != nil {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		werr := collector.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", werr)
			return 2
		}
		fmt.Printf("report   : wrote %s\n", *report)
	}
	if *tracefile != "" {
		fmt.Printf("trace    : wrote %s\n", *tracefile)
	}
	return 0
}

// buildFaultPlan assembles a FaultPlan from the -drop / -corrupt / -crash
// flags; nil when no fault flag is set.
func buildFaultPlan(seed int64, drop, corrupt float64, crash string) (*subgraph.FaultPlan, error) {
	var crashes []subgraph.Crash
	if crash != "" {
		for _, spec := range strings.Split(crash, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), "@", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad -crash entry %q: want v@r", spec)
			}
			v, err1 := strconv.Atoi(parts[0])
			r, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("bad -crash entry %q: want v@r", spec)
			}
			crashes = append(crashes, subgraph.Crash{Vertex: v, Round: r})
		}
	}
	if drop == 0 && corrupt == 0 && len(crashes) == 0 {
		return nil, nil
	}
	return &subgraph.FaultPlan{
		Seed:        seed,
		DropRate:    drop,
		CorruptRate: corrupt,
		Crashes:     crashes,
	}, nil
}

// dumpGraph writes g in the edge-list format the -file flag and the
// subgraphd upload endpoint read back.
func dumpGraph(path string, g *subgraph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := subgraph.WriteEdgeList(f, g)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func loadGraph(path string) (*subgraph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return subgraph.ReadEdgeList(f)
}

func buildGraph(kind string, n int, p float64, cycleLen, cliqueSz int, rng *rand.Rand) (*subgraph.Graph, error) {
	switch kind {
	case "gnp":
		return subgraph.GNP(n, p, rng), nil
	case "complete":
		return subgraph.Complete(n), nil
	case "cycle":
		return subgraph.Cycle(n), nil
	case "path":
		return subgraph.Path(n), nil
	case "tree":
		return subgraph.RandomTree(n, rng), nil
	case "planted-cycle":
		g, _ := subgraph.PlantCycle(subgraph.GNP(n, p, rng), cycleLen, rng)
		return g, nil
	case "planted-clique":
		g, _ := subgraph.PlantClique(subgraph.GNP(n, p, rng), cliqueSz, rng)
		return g, nil
	}
	return nil, fmt.Errorf("unknown graph kind %q", kind)
}

// buildPattern delegates to the facade's pattern codec — the same parser
// the subgraphd job API uses, so CLI and server accept identical specs.
func buildPattern(spec string) (*subgraph.Graph, error) {
	return subgraph.ParsePattern(spec)
}
