// lowerbound emits the paper's lower-bound constructions and their
// measured properties.
//
// Examples:
//
//	lowerbound -construction hk -k 3
//	lowerbound -construction gkn -k 2 -n 6 -intersect
//	lowerbound -construction bipartite -k 2 -n 4
//	lowerbound -construction template -n 8
//	lowerbound -construction gkn -k 2 -n 4 -edges   # dump the edge list
//
// The -cpuprofile / -memprofile / -trace / -pprof flags profile a
// construction build (useful at large n; see the README's Observability
// section).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"subgraph/internal/comm"
	"subgraph/internal/congest"
	"subgraph/internal/graph"
	"subgraph/internal/lower"
	"subgraph/internal/obs"
)

func main() {
	os.Exit(run())
}

// run is main's body; returning (instead of os.Exit-ing) lets the
// deferred profile finalizers flush before the process exits.
func run() int {
	var (
		construction = flag.String("construction", "hk", "hk | gkn | bipartite | template")
		k            = flag.Int("k", 2, "triangle count parameter of H_k")
		n            = flag.Int("n", 4, "disjointness side length (gkn/bipartite) or leaf count (template)")
		intersect    = flag.Bool("intersect", false, "force an intersecting disjointness instance")
		seed         = flag.Int64("seed", 1, "random seed")
		edges        = flag.Bool("edges", false, "dump the edge list")
	)
	var profiles obs.Profiles
	profiles.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProfiles, err := profiles.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	rng := rand.New(rand.NewSource(*seed))

	switch *construction {
	case "hk":
		h := lower.BuildHk(*k)
		fmt.Printf("H_%d (Figure 1): |V|=%d |E|=%d diameter=%d\n", *k, h.G.N(), h.G.M(), h.G.Diameter())
		fmt.Printf("endpoint degree: %d (= k+2)\n", h.G.Degree(h.Endpoint[lower.Top][lower.DirA]))
		dump(h.G, *edges)

	case "gkn":
		inst := comm.RandomDisjointness(*n, 1.5/float64(*n), *intersect, rng)
		g := lower.BuildGkn(*k, inst)
		fmt.Printf("G_{%d,%d} (Definition 2 / Figure 2): |V|=%d |E|=%d diameter=%d m=%d\n",
			*k, *n, g.G.N(), g.G.M(), g.G.Diameter(), g.M)
		fmt.Printf("instance intersects: %v → H_k present (Lemma 3.1): %v\n",
			inst.Intersects(), graph.ContainsSubgraph(lower.BuildHk(*k).G, g.G))
		fmt.Printf("simulation cut: %d edges (6m+8)\n", g.Partition().CutSize(net(g.G)))
		dump(g.G, *edges)

	case "bipartite":
		inst := comm.RandomDisjointness(*n, 1.5/float64(*n), *intersect, rng)
		h := lower.BuildBipartiteHk(*k, *n)
		g := lower.BuildBipartiteGkn(*k, inst)
		bip, _ := g.G.IsBipartite()
		fmt.Printf("bipartite H'_%d: |V|=%d |E|=%d; host: |V|=%d |E|=%d bipartite=%v\n",
			*k, h.G.N(), h.G.M(), g.G.N(), g.G.M(), bip)
		fmt.Printf("simulation cut: %d edges (4m, m=%d)\n", g.Partition().CutSize(net(g.G)), g.M)
		dump(g.G, *edges)

	case "template":
		ti := lower.SampleTemplate(*n, rng)
		fmt.Printf("G_T sample (Figure 3), n=%d leaves per special node\n", *n)
		fmt.Printf("special ids: %v\n", ti.SpecialID)
		fmt.Printf("edges (ab, bc, ac): %v %v %v → triangle: %v\n",
			ti.Edge[0], ti.Edge[1], ti.Edge[2], ti.HasTriangle())

	default:
		fmt.Fprintf(os.Stderr, "unknown construction %q\n", *construction)
		return 2
	}
	return 0
}

func net(g *graph.Graph) *congest.Network { return congest.NewNetwork(g) }

func dump(g *graph.Graph, doit bool) {
	if !doit {
		return
	}
	for _, e := range g.Edges() {
		fmt.Printf("%d %d\n", e[0], e[1])
	}
}
