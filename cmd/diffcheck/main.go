// Command diffcheck runs the differential/metamorphic correctness
// harness: seeded random (graph, pattern, options, fault-plan) cases
// checked against an oracle battery — engine equality, split-execution
// equality, VF2 ground truth, daemon round-trips, metamorphic relations —
// with failing cases shrunk to replayable JSON repro artifacts.
//
//	diffcheck -cases 500 -seed 1                 # run the battery
//	diffcheck -oracle engine-equality,ground-truth
//	diffcheck -replay artifacts/repro.json       # re-execute a repro
//	diffcheck -list                              # show the battery
//
// Exit status: 0 clean, 1 discrepancies found (or a replayed repro still
// failing), 2 usage or harness error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"subgraph/internal/diffcheck"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		cases     = flag.Int("cases", 200, "random cases to generate")
		seed      = flag.Int64("seed", 1, "generator seed (same seed = same battery)")
		artifacts = flag.String("artifacts", "diffcheck-artifacts", "directory for repro artifacts (empty disables)")
		oracle    = flag.String("oracle", "", "comma-separated oracle filter (default: all)")
		replay    = flag.String("replay", "", "re-execute the repro artifact at this path and exit")
		list      = flag.Bool("list", false, "list the oracle battery and exit")
		verbose   = flag.Bool("v", false, "log every failing case as it is found")
	)
	flag.Parse()

	if *list {
		for _, o := range diffcheck.Oracles() {
			fmt.Printf("%-22s %s\n", o.Name, o.Doc)
		}
		return 0
	}

	if *replay != "" {
		if err := diffcheck.Replay(*replay); err != nil {
			fmt.Fprintf(os.Stderr, "diffcheck: REPRODUCED: %v\n", err)
			return 1
		}
		fmt.Printf("diffcheck: %s replays clean (the recorded discrepancy no longer occurs)\n", *replay)
		return 0
	}

	opt := diffcheck.Options{
		Cases:       *cases,
		Seed:        *seed,
		ArtifactDir: *artifacts,
	}
	if *oracle != "" {
		opt.Oracles = strings.Split(*oracle, ",")
	}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "diffcheck: "+format+"\n", args...)
		}
	}

	sum, err := diffcheck.Run(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffcheck: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(sum.PerOracle))
	for name := range sum.PerOracle {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("diffcheck: %d cases, %d oracle checks (seed %d)\n", sum.Cases, sum.Checks, *seed)
	for _, name := range names {
		fmt.Printf("  %-22s %5d checks\n", name, sum.PerOracle[name])
	}
	if sum.OK() {
		fmt.Println("diffcheck: all oracles passed")
		return 0
	}
	fmt.Printf("diffcheck: %d DISCREPANCIES\n", len(sum.Failures))
	for _, f := range sum.Failures {
		fmt.Printf("  case %d, oracle %s: %s\n", f.CaseIndex, f.Artifact.Oracle, f.Artifact.Detail)
		if f.Path != "" {
			fmt.Printf("    repro: %s (replay with: diffcheck -replay %s)\n", f.Path, f.Path)
		}
	}
	return 1
}
