// experiments regenerates every table of EXPERIMENTS.md: one experiment
// per theorem/figure of the paper (index in DESIGN.md §3).
//
//	experiments            # the full sweep used for EXPERIMENTS.md
//	experiments -quick     # a fast smoke-scale run
//	experiments -only E4   # a single experiment
package main

import (
	"flag"
	"fmt"
	"strings"

	"subgraph/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "small sizes (seconds instead of minutes)")
		only  = flag.String("only", "", "run a single experiment: E1 .. E8")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}

	if want("E1") {
		nsK2 := []int{100, 200, 400, 800, 1600, 3200, 6400}
		nsK3 := []int{100, 200, 400, 800}
		if *quick {
			nsK2 = []int{100, 200, 400}
			nsK3 = []int{100, 200}
		}
		fmt.Print(experiments.FormatE1(experiments.E1EvenCycleScaling(2, nsK2, *seed)))
		fmt.Println()
		fmt.Print(experiments.FormatE1(experiments.E1EvenCycleScaling(3, nsK3, *seed)))
		fmt.Println()
		repsList, trials := []int{1, 4, 16, 64}, 30
		if *quick {
			repsList, trials = []int{1, 8}, 8
		}
		fmt.Print(experiments.FormatE1Prob(experiments.E1DetectionProbability(2, 120, repsList, trials, *seed)))
		fmt.Println()
	}
	if want("E2") {
		ns := []int{3, 4, 6, 8, 12}
		if *quick {
			ns = []int{3, 5}
		}
		fmt.Print(experiments.FormatE2(experiments.E2LowerBoundFamily(2, ns, *seed)))
		fmt.Println()
		if !*quick {
			fmt.Print(experiments.FormatE2(experiments.E2LowerBoundFamily(3, []int{3, 5, 8}, *seed)))
			fmt.Println()
		}
	}
	if want("E3") {
		ns := []int{3, 4, 6}
		if *quick {
			ns = []int{3, 4}
		}
		fmt.Print(experiments.FormatE3(experiments.E3BipartiteFamily(2, ns, *seed)))
		fmt.Println()
	}
	if want("E4") {
		parts := []int{8, 12, 16}
		bits := []int{1, 2, 3, 4, 6}
		if *quick {
			parts = []int{8}
			bits = []int{1, 5}
		}
		fmt.Print(experiments.FormatE4(experiments.E4Fooling(parts, bits)))
		fmt.Println()
		pads := []int{1, 5, 20}
		if *quick {
			pads = []int{1, 5}
		}
		fmt.Print(experiments.FormatE4Padded(experiments.E4PaddedFooling(8, []int{1, 5}, pads)))
		fmt.Println()
	}
	if want("E5") {
		n, samples := 64, 40000
		if *quick {
			n, samples = 32, 8000
		}
		fmt.Print(experiments.FormatE5(experiments.E5OneRound(n, samples, *seed)))
		fmt.Println()
		capNs := []int{128, 256, 512, 1024}
		if *quick {
			capNs = []int{128, 256}
		}
		fmt.Print(experiments.FormatE5Cap(experiments.E5Lemma54Binding(capNs, samples/2, *seed)))
		fmt.Println()
	}
	if want("E6") {
		fmt.Print(experiments.FormatE6Counts(experiments.E6Lemma13(*seed)))
		fmt.Println()
		ns := []int{16, 24, 32, 48, 64}
		if *quick {
			ns = []int{16, 24}
		}
		fmt.Print(experiments.FormatE6Listing(experiments.E6Listing(3, ns, *seed)))
		fmt.Println()
		if !*quick {
			fmt.Print(experiments.FormatE6Listing(experiments.E6Listing(4, []int{16, 24, 32, 48}, *seed)))
			fmt.Println()
		}
	}
	if want("E7") {
		ns := []int{3, 4, 6, 8}
		if *quick {
			ns = []int{3, 4}
		}
		fmt.Print(experiments.FormatE7(experiments.E7Separation(2, ns, *seed)))
		fmt.Println()
		if !*quick {
			fmt.Print(experiments.FormatE7(experiments.E7Separation(3, []int{3, 5}, *seed)))
			fmt.Println()
		}
	}
	if want("E8") {
		drops := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
		n, trials := 120, 30
		if *quick {
			drops = []float64{0, 0.2, 0.5}
			n, trials = 60, 8
		}
		fmt.Print(experiments.FormatE8(fmt.Sprintf("C_4 color-BFS (n=%d, planted coloring)", n),
			experiments.E8EvenCycleDropSweep(2, n, drops, trials, *seed)))
		fmt.Println()
		tn := 40
		if *quick {
			tn = 24
		}
		// Sparse background (p = 1/n) so the planted triangle is usually
		// the only one: the 6-fold per-triangle announcement redundancy is
		// then the only thing standing between the detector and a miss.
		fmt.Print(experiments.FormatE8(fmt.Sprintf("triangle neighbor-exchange (n=%d, p=1/n)", tn),
			experiments.E8TriangleDropSweep(tn, 1.0/float64(tn), drops, trials, *seed)))
		fmt.Println()
	}
}
