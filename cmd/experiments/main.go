// experiments regenerates every table of EXPERIMENTS.md: one experiment
// per theorem/figure of the paper (index in DESIGN.md §3).
//
//	experiments                  # the full sweep used for EXPERIMENTS.md
//	experiments -quick           # a fast smoke-scale run
//	experiments -only E4         # a single experiment
//	experiments -json out.json   # additionally dump every table as JSON
//
// The -cpuprofile / -memprofile / -trace / -pprof flags profile the
// sweep itself (see the README's Observability section).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subgraph/internal/experiments"
	"subgraph/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		quick    = flag.Bool("quick", false, "small sizes (seconds instead of minutes)")
		only     = flag.String("only", "", "run a single experiment: E1 .. E8")
		seed     = flag.Int64("seed", 1, "random seed")
		jsonPath = flag.String("json", "", "also write every table as structured JSON to this file")
	)
	var profiles obs.Profiles
	profiles.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stopProfiles, err := profiles.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	var suite *experiments.Suite
	if *jsonPath != "" {
		suite = experiments.NewSuite(*seed, *quick)
	}
	// show prints a table and records its raw rows in the suite.
	show := func(experiment, title, formatted string, rows any) {
		fmt.Print(formatted)
		fmt.Println()
		suite.Add(experiment, title, rows)
	}

	if want("E1") {
		nsK2 := []int{100, 200, 400, 800, 1600, 3200, 6400}
		nsK3 := []int{100, 200, 400, 800}
		if *quick {
			nsK2 = []int{100, 200, 400}
			nsK3 = []int{100, 200}
		}
		rowsK2 := experiments.E1EvenCycleScaling(2, nsK2, *seed)
		show("E1", "even-cycle scaling k=2", experiments.FormatE1(rowsK2), rowsK2)
		rowsK3 := experiments.E1EvenCycleScaling(3, nsK3, *seed)
		show("E1", "even-cycle scaling k=3", experiments.FormatE1(rowsK3), rowsK3)
		repsList, trials := []int{1, 4, 16, 64}, 30
		if *quick {
			repsList, trials = []int{1, 8}, 8
		}
		prob := experiments.E1DetectionProbability(2, 120, repsList, trials, *seed)
		show("E1", "detection probability vs repetitions", experiments.FormatE1Prob(prob), prob)
	}
	if want("E2") {
		ns := []int{3, 4, 6, 8, 12}
		if *quick {
			ns = []int{3, 5}
		}
		rows := experiments.E2LowerBoundFamily(2, ns, *seed)
		show("E2", "lower-bound family k=2", experiments.FormatE2(rows), rows)
		if !*quick {
			rows = experiments.E2LowerBoundFamily(3, []int{3, 5, 8}, *seed)
			show("E2", "lower-bound family k=3", experiments.FormatE2(rows), rows)
		}
	}
	if want("E3") {
		ns := []int{3, 4, 6}
		if *quick {
			ns = []int{3, 4}
		}
		rows := experiments.E3BipartiteFamily(2, ns, *seed)
		show("E3", "bipartite family k=2", experiments.FormatE3(rows), rows)
	}
	if want("E4") {
		parts := []int{8, 12, 16}
		bits := []int{1, 2, 3, 4, 6}
		if *quick {
			parts = []int{8}
			bits = []int{1, 5}
		}
		rows := experiments.E4Fooling(parts, bits)
		show("E4", "fooling-set bandwidth bound", experiments.FormatE4(rows), rows)
		pads := []int{1, 5, 20}
		if *quick {
			pads = []int{1, 5}
		}
		padded := experiments.E4PaddedFooling(8, []int{1, 5}, pads)
		show("E4", "padded fooling set", experiments.FormatE4Padded(padded), padded)
	}
	if want("E5") {
		n, samples := 64, 40000
		if *quick {
			n, samples = 32, 8000
		}
		rows := experiments.E5OneRound(n, samples, *seed)
		show("E5", "one-round triangle error", experiments.FormatE5(rows), rows)
		capNs := []int{128, 256, 512, 1024}
		if *quick {
			capNs = []int{128, 256}
		}
		caps := experiments.E5Lemma54Binding(capNs, samples/2, *seed)
		show("E5", "Lemma 5.4 binding", experiments.FormatE5Cap(caps), caps)
	}
	if want("E6") {
		counts := experiments.E6Lemma13(*seed)
		show("E6", "Lemma 1.3 split counts", experiments.FormatE6Counts(counts), counts)
		ns := []int{16, 24, 32, 48, 64}
		if *quick {
			ns = []int{16, 24}
		}
		rows := experiments.E6Listing(3, ns, *seed)
		show("E6", "triangle listing", experiments.FormatE6Listing(rows), rows)
		if !*quick {
			rows = experiments.E6Listing(4, []int{16, 24, 32, 48}, *seed)
			show("E6", "K4 listing", experiments.FormatE6Listing(rows), rows)
		}
	}
	if want("E7") {
		ns := []int{3, 4, 6, 8}
		if *quick {
			ns = []int{3, 4}
		}
		rows := experiments.E7Separation(2, ns, *seed)
		show("E7", "broadcast/unicast separation k=2", experiments.FormatE7(rows), rows)
		if !*quick {
			rows = experiments.E7Separation(3, []int{3, 5}, *seed)
			show("E7", "broadcast/unicast separation k=3", experiments.FormatE7(rows), rows)
		}
	}
	if want("E8") {
		drops := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
		n, trials := 120, 30
		if *quick {
			drops = []float64{0, 0.2, 0.5}
			n, trials = 60, 8
		}
		title := fmt.Sprintf("C_4 color-BFS (n=%d, planted coloring)", n)
		rows := experiments.E8EvenCycleDropSweep(2, n, drops, trials, *seed)
		show("E8", title, experiments.FormatE8(title, rows), rows)
		tn := 40
		if *quick {
			tn = 24
		}
		// Sparse background (p = 1/n) so the planted triangle is usually
		// the only one: the 6-fold per-triangle announcement redundancy is
		// then the only thing standing between the detector and a miss.
		title = fmt.Sprintf("triangle neighbor-exchange (n=%d, p=1/n)", tn)
		rows = experiments.E8TriangleDropSweep(tn, 1.0/float64(tn), drops, trials, *seed)
		show("E8", title, experiments.FormatE8(title, rows), rows)
	}

	if suite != nil {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		werr := suite.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d tables)\n", *jsonPath, len(suite.Tables))
	}
	return 0
}
