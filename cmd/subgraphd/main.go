// Command subgraphd is the long-running detection-job daemon: it serves
// the subgraph-detection HTTP/JSON API (graph uploads, job submission,
// result polling, traces, metrics) on a bounded worker budget with a
// content-addressed graph store and an LRU result cache.
//
// Modes:
//
//	subgraphd -listen :8080                        # serve until SIGTERM
//	subgraphd -loadgen -jobs 500 -out BENCH.json   # load-test (in-process server)
//	subgraphd -loadgen -target http://host:8080    # load-test a remote daemon
//	subgraphd -selfcheck http://host:8080          # end-to-end cross-check
//
// On SIGTERM/SIGINT the daemon stops admitting jobs (503), finishes the
// queued and in-flight ones, prints a drain summary, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"subgraph/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "address to serve on (use :0 for an ephemeral port)")
		portFile     = flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
		workers      = flag.Int("workers", 2, "worker goroutines executing jobs")
		queue        = flag.Int("queue", 64, "admission queue depth (a full queue answers 429)")
		cacheSize    = flag.Int("cache", 512, "result cache entries (0 or negative disables caching)")
		maxGraphs    = flag.Int("max-graphs", 128, "graphs retained in the content-addressed store (LRU)")
		maxDeadline  = flag.Duration("max-deadline", 60*time.Second, "per-job wall-clock deadline cap")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight jobs")

		loadgen     = flag.Bool("loadgen", false, "load-generator mode: replay a seeded job mix and report latency percentiles")
		target      = flag.String("target", "", "loadgen: base URL of a running daemon (default: in-process server)")
		jobs        = flag.Int("jobs", 200, "loadgen: jobs to replay")
		concurrency = flag.Int("concurrency", 8, "loadgen: client workers")
		seed        = flag.Int64("seed", 1, "loadgen: workload seed (same seed = same mix)")
		graphN      = flag.Int("graph-n", 150, "loadgen: vertices per generated topology")
		repeatFrac  = flag.Float64("repeat", 0.5, "loadgen: fraction of jobs repeating an earlier one (cache exercise)")
		out         = flag.String("out", "", "loadgen: write the benchreport JSON here (default stdout)")

		selfcheck = flag.String("selfcheck", "", "run the end-to-end self-check against this base URL and exit")
		saturate  = flag.Bool("saturate", false, "selfcheck: also assert 429 admission control (server must run -workers 1 -queue 1)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "subgraphd: ", log.LstdFlags)

	// The flag's 0 means "disable caching"; Config's zero value means
	// "take the 512 default" (struct zero values cannot tell unset from
	// an explicit 0), so an operator's -cache 0 is translated to the
	// Config's negative disable sentinel rather than silently becoming
	// the default.
	effCache := *cacheSize
	if effCache <= 0 {
		effCache = -1
	}
	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      effCache,
		MaxGraphs:      *maxGraphs,
		MaxJobDeadline: *maxDeadline,
	}

	switch {
	case *selfcheck != "":
		err := serve.SelfCheck(*selfcheck, serve.SelfCheckOptions{
			Saturate: *saturate,
			Logf:     logger.Printf,
		})
		if err != nil {
			logger.Printf("selfcheck FAILED: %v", err)
			return 1
		}
		logger.Printf("selfcheck passed")
		return 0

	case *loadgen:
		return runLoadGen(logger, cfg, serve.LoadGenConfig{
			BaseURL:        *target,
			Jobs:           *jobs,
			Concurrency:    *concurrency,
			Seed:           *seed,
			GraphN:         *graphN,
			RepeatFraction: *repeatFrac,
			Logf:           logger.Printf,
		}, *out)

	default:
		return runServe(logger, cfg, *listen, *portFile, *drainTimeout)
	}
}

// runServe serves the API until SIGTERM/SIGINT, then drains and exits.
func runServe(logger *log.Logger, cfg serve.Config, listen, portFile string, drainTimeout time.Duration) int {
	srv := serve.New(cfg)
	srv.Start()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		logger.Printf("listen %s: %v", listen, err)
		return 1
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			logger.Printf("writing portfile: %v", err)
			return 1
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Printf("serving on http://%s (workers=%d queue=%d cache=%d)",
		ln.Addr(), cfg.Workers, cfg.QueueDepth, cfg.CacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigc:
		logger.Printf("%s: draining (in-flight and queued jobs keep running, new submissions get 503)", sig)
	case err := <-errc:
		logger.Printf("http server: %v", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	completed, derr := srv.Drain(ctx)
	// The HTTP listener stays up during the drain so clients can poll the
	// jobs they already own; shut it down once the queue is empty.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	if derr != nil {
		logger.Printf("drain: %v (%d jobs completed since startup)", derr, completed)
		return 1
	}
	logger.Printf("drained cleanly; %d jobs completed since startup", completed)
	return 0
}

// runLoadGen replays the seeded mix, spinning up an in-process daemon when
// no -target is given, and writes the benchreport JSON.
func runLoadGen(logger *log.Logger, cfg serve.Config, lg serve.LoadGenConfig, out string) int {
	if lg.BaseURL == "" {
		srv := serve.New(cfg)
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			logger.Printf("listen: %v", err)
			return 1
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, _ = srv.Drain(ctx)
			_ = hs.Shutdown(ctx)
		}()
		lg.BaseURL = "http://" + ln.Addr().String()
		logger.Printf("loadgen against in-process server %s (workers=%d)", lg.BaseURL, cfg.Workers)
	}

	res, err := serve.RunLoadGen(lg)
	if err != nil {
		logger.Printf("loadgen: %v", err)
		return 1
	}
	if res.Errors > 0 {
		logger.Printf("loadgen: %d jobs errored", res.Errors)
		return 1
	}
	data, err := json.MarshalIndent(res.BenchReport(), "", "  ")
	if err != nil {
		logger.Printf("encoding report: %v", err)
		return 1
	}
	data = append(data, '\n')
	if out == "" {
		fmt.Print(string(data))
		return 0
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		logger.Printf("writing %s: %v", out, err)
		return 1
	}
	logger.Printf("wrote %s", out)
	return 0
}
