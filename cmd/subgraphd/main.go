// Command subgraphd is the long-running detection-job daemon: it serves
// the subgraph-detection HTTP/JSON API (graph uploads, job submission,
// result polling, traces, metrics) on a bounded worker budget with a
// content-addressed graph store and an LRU result cache.
//
// Modes:
//
//	subgraphd -listen :8080                        # serve until SIGTERM
//	subgraphd -router -members http://w1,http://w2 # cluster router over a worker fleet
//	subgraphd -loadgen -jobs 500 -out BENCH.json   # load-test (in-process server)
//	subgraphd -loadgen -cluster 3                  # load-test an in-process router + 3 workers
//	subgraphd -loadgen -target http://host:8080    # load-test a remote daemon or router
//	subgraphd -selfcheck http://host:8080          # end-to-end cross-check
//
// On SIGTERM/SIGINT the daemon stops admitting jobs (503), finishes the
// queued and in-flight ones, prints a drain summary, and exits 0. A
// router drains by resolving every admitted job against its workers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"subgraph/internal/canary"
	"subgraph/internal/cluster"
	"subgraph/internal/obs"
	"subgraph/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "address to serve on (use :0 for an ephemeral port)")
		portFile     = flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
		workers      = flag.Int("workers", 2, "worker goroutines executing jobs")
		queue        = flag.Int("queue", 64, "admission queue depth (a full queue answers 429)")
		cacheSize    = flag.Int("cache", 512, "result cache entries (0 or negative disables caching)")
		maxGraphs    = flag.Int("max-graphs", 128, "graphs retained in the content-addressed store (LRU)")
		maxDeadline  = flag.Duration("max-deadline", 60*time.Second, "per-job wall-clock deadline cap")
		deltaChurn   = flag.Float64("delta-churn", 0, "churn-ratio threshold (changes/edges) at or under which deltas maintain results incrementally; 0 means the default 0.05, negative disables incremental maintenance")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight jobs")

		router      = flag.Bool("router", false, "router mode: front a static worker fleet with digest routing, a shared result cache, and cluster admission control (requires -members)")
		members     = flag.String("members", "", "router: comma-separated worker base URLs (falls back to env SUBGRAPHD_MEMBERS)")
		replication = flag.Int("replication", 2, "router/cluster loadgen: how many workers own each graph digest")
		nodeName    = flag.String("node-name", "", "node name reported by /healthz and as the node= label on /metrics?format=prom")
		maxInflight = flag.Int("max-inflight", 256, "router: cluster-wide in-flight job bound (429 beyond it)")

		canaryFrac = flag.Float64("canary", 0, "fraction of completed jobs asynchronously re-checked through a second engine (+ ground truth on small instances); 0 disables")
		canaryDir  = flag.String("canary-artifacts", ".", "directory for shrunk canary divergence artifacts (replayable with cmd/diffcheck -replay)")
		sloP99     = flag.Duration("slo-p99", 0, "p99 job-latency budget; breaching it sheds low-priority jobs with 429 + Retry-After (0 disables the SLO guard)")
		sloQWait   = flag.Duration("slo-queue-wait", 0, "p99 queue-wait budget feeding the same SLO guard (0 disables)")
		sloWindow  = flag.Duration("slo-window", 30*time.Second, "rolling window the SLO percentiles are computed over")

		loadgen     = flag.Bool("loadgen", false, "load-generator mode: replay a seeded job mix and report latency percentiles")
		clusterN    = flag.Int("cluster", 0, "loadgen: boot an in-process router + N workers and load-test through the router")
		target      = flag.String("target", "", "loadgen: base URL of a running daemon (default: in-process server)")
		jobs        = flag.Int("jobs", 200, "loadgen: jobs to replay")
		concurrency = flag.Int("concurrency", 8, "loadgen: client workers")
		seed        = flag.Int64("seed", 1, "loadgen: workload seed (same seed = same mix)")
		graphN      = flag.Int("graph-n", 150, "loadgen: vertices per generated topology")
		repeatFrac  = flag.Float64("repeat", 0.5, "loadgen: fraction of jobs repeating an earlier one (cache exercise)")
		lowFrac     = flag.Float64("low-frac", 0, "loadgen: fraction of jobs submitted at low priority (the tier the SLO guard sheds first)")
		countFrac   = flag.Float64("count-frac", 0, "loadgen: fraction of jobs submitted in count mode (clique patterns routed to the local bitset kernel)")
		warmup      = flag.Int("warmup", 0, "loadgen: unmeasured warm-up jobs replayed before the metrics snapshot (steady-state cache/kernel measurement)")
		chaos       = flag.Bool("chaos", false, "loadgen: wrap the in-process server in seeded fault injection (429/503/latency) — grades the client's retry policy")
		chaosSeed   = flag.Int64("chaos-seed", 1, "loadgen: fault-injection seed")
		out         = flag.String("out", "", "loadgen: write the benchreport JSON here (default stdout)")

		churn        = flag.Bool("churn", false, "churn mode: evolve a graph through a delta chain and report incremental-vs-scratch count latency (combine with -loadgen flags -seed/-graph-n/-target/-out)")
		churnSteps   = flag.Int("churn-steps", 40, "churn: delta-chain length")
		churnChanges = flag.Int("churn-changes", 8, "churn: edge changes per delta (churn ratio = changes/m)")
		churnDegree  = flag.Float64("churn-degree", 40, "churn: average degree of the evolving graph")
		churnPattern = flag.String("churn-pattern", "clique:4", "churn: watched clique-family pattern")

		selfcheck = flag.String("selfcheck", "", "run the end-to-end self-check against this base URL and exit")
		saturate  = flag.Bool("saturate", false, "selfcheck: also assert 429 admission control (server must run -workers 1 -queue 1)")

		flightSize = flag.Int("flight", 256, "completed-job span timelines kept for GET /debug/jobs (negative disables the flight recorder)")
		traceDemo  = flag.Bool("trace-demo", false, "loadgen: after the run, dump one recorded job timeline and the Prometheus metrics page")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("app", "subgraphd")

	// The flag's 0 means "disable caching"; Config's zero value means
	// "take the 512 default" (struct zero values cannot tell unset from
	// an explicit 0), so an operator's -cache 0 is translated to the
	// Config's negative disable sentinel rather than silently becoming
	// the default.
	effCache := *cacheSize
	if effCache <= 0 {
		effCache = -1
	}
	reg := obs.NewRegistry()
	// logf adapts the structured logger for the Logf-style progress hooks
	// (loadgen, selfcheck) whose lines are already fully formatted.
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }
	flight := *flightSize
	if *loadgen && flight > 0 && flight < *jobs*8 {
		// The acceptance bar for a load run is every completed job being
		// retrievable from /debug/jobs/{id}. Shed, rejected, and coalesced
		// submissions record timelines too — under chaos each job may retry
		// several times — so size the ring for total submissions, not jobs.
		flight = *jobs * 8
	}
	cfg := serve.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheSize:           effCache,
		MaxGraphs:           *maxGraphs,
		MaxJobDeadline:      *maxDeadline,
		DeltaChurnThreshold: *deltaChurn, // 0 → serve's 0.05 default, negative → disabled
		Registry:            reg,
		SLO: serve.SLOConfig{
			LatencyBudget:   *sloP99,
			QueueWaitBudget: *sloQWait,
			Window:          *sloWindow,
		},
		FlightRecorderSize: flight,
		Logger:             logger,
		NodeName:           *nodeName,
	}

	// The canary shares the server's registry and taps completed jobs via
	// OnJobDone; it only makes sense where the server runs in this process.
	var cn *canary.Canary
	if *canaryFrac > 0 {
		if *selfcheck != "" || (*loadgen && *target != "") {
			logger.Error("-canary needs the server in-process (drop -target / -selfcheck)")
			return 2
		}
		cn = canary.New(canary.Config{
			Fraction:    *canaryFrac,
			Seed:        *seed,
			ArtifactDir: *canaryDir,
			Registry:    reg,
			Logger:      logger.With("component", "canary"),
		})
		cfg.OnJobDone = cn.OnJobDone
	}

	switch {
	case *router:
		if *loadgen || *churn || *selfcheck != "" {
			logger.Error("-router is a serving mode; drop -loadgen / -churn / -selfcheck")
			return 2
		}
		memberList := splitMembers(*members)
		if len(memberList) == 0 {
			memberList = splitMembers(os.Getenv("SUBGRAPHD_MEMBERS"))
		}
		if len(memberList) == 0 {
			logger.Error("router mode needs workers: set -members or SUBGRAPHD_MEMBERS")
			return 2
		}
		return runRouter(logger, cluster.Config{
			Members:     memberList,
			Replication: *replication,
			NodeName:    *nodeName,
			MaxInflight: *maxInflight,
			CacheSize:   effCache,
			MaxGraphs:   *maxGraphs,
			Registry:    reg,
			SLO: serve.SLOConfig{
				LatencyBudget:   *sloP99,
				QueueWaitBudget: *sloQWait,
				Window:          *sloWindow,
			},
			FlightRecorderSize: *flightSize,
			Logger:             logger,
		}, *listen, *portFile, *drainTimeout)

	case *selfcheck != "":
		err := serve.SelfCheck(*selfcheck, serve.SelfCheckOptions{
			Saturate: *saturate,
			Logf:     logf,
		})
		if err != nil {
			logger.Error("selfcheck FAILED", "err", err)
			return 1
		}
		logger.Info("selfcheck passed")
		return 0

	case *churn:
		if *loadgen {
			logger.Error("-churn is its own workload; drop -loadgen")
			return 2
		}
		// -graph-n's flag default (150) suits the job-mix loadgen; the churn
		// chain defaults larger (ChurnConfig's 2000) so the from-scratch
		// comparator does real work. An explicit -graph-n wins in both modes.
		churnN := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "graph-n" {
				churnN = *graphN
			}
		})
		return runChurn(logger, cfg, serve.ChurnConfig{
			BaseURL: *target,
			Steps:   *churnSteps,
			GraphN:  churnN,
			Degree:  *churnDegree,
			Changes: *churnChanges,
			Pattern: *churnPattern,
			Seed:    *seed,
			Logf:    logf,
		}, *out)

	case *loadgen:
		if *clusterN > 0 && (*target != "" || *chaos || *canaryFrac > 0) {
			logger.Error("-cluster boots its own in-process topology; drop -target / -chaos / -canary")
			return 2
		}
		var chaosCfg *serve.ChaosConfig
		if *chaos {
			if *target != "" {
				logger.Error("-chaos wraps the in-process server; it cannot inject into a remote -target")
				return 2
			}
			chaosCfg = &serve.ChaosConfig{
				Seed:        *chaosSeed,
				Reject429:   0.10,
				Fail503:     0.05,
				LatencyRate: 0.10,
				LatencyMax:  25 * time.Millisecond,
			}
		}
		return runLoadGen(logger, cfg, serve.LoadGenConfig{
			BaseURL:             *target,
			Jobs:                *jobs,
			Concurrency:         *concurrency,
			Seed:                *seed,
			GraphN:              *graphN,
			RepeatFraction:      *repeatFrac,
			LowPriorityFraction: *lowFrac,
			CountFraction:       *countFrac,
			Warmup:              *warmup,
			Logf:                logf,
		}, *out, chaosCfg, cn, *traceDemo, *clusterN, *replication)

	default:
		return runServe(logger, cfg, *listen, *portFile, *drainTimeout, cn)
	}
}

// drainCanary flushes the canary's queue and reports its verdict: the
// number of divergences (0 on a healthy engine) and how many jobs were
// cross-checked to earn it.
func drainCanary(logger *slog.Logger, cn *canary.Canary, reg *obs.Registry) (divergences int64) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := cn.Drain(ctx); err != nil {
		logger.Warn("canary drain", "err", err)
	}
	checked := reg.Counter(canary.MetricChecked).Value()
	divergences = cn.Divergences()
	if divergences > 0 {
		logger.Error("canary divergences found (repro artifacts written)",
			"divergences", divergences, "checked", checked)
	} else {
		logger.Info("canary clean", "checked", checked, "divergences", 0)
	}
	return divergences
}

// splitMembers parses a comma-separated member list, trimming whitespace
// and dropping empty entries ("a, b,," -> ["a","b"]).
func splitMembers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if m := strings.TrimSpace(part); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// runRouter fronts a static worker fleet until SIGTERM/SIGINT, then
// resolves every admitted job against the workers and exits. It mirrors
// runServe: the listener stays up through the drain so clients can poll
// jobs they already own.
func runRouter(logger *slog.Logger, cfg cluster.Config, listen, portFile string, drainTimeout time.Duration) int {
	rt, err := cluster.New(cfg)
	if err != nil {
		logger.Error("router config", "err", err)
		return 1
	}
	rt.Start()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		logger.Error("listen", "addr", listen, "err", err)
		return 1
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			logger.Error("writing portfile", "err", err)
			return 1
		}
	}
	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Info("routing",
		"url", "http://"+ln.Addr().String(), "members", len(cfg.Members),
		"replication", cfg.Replication, "max_inflight", cfg.MaxInflight)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigc:
		logger.Info("draining on signal (admitted jobs resolve against workers, new submissions get 503)",
			"signal", sig.String())
	case err := <-errc:
		logger.Error("http server", "err", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	derr := rt.Drain(ctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	if derr != nil {
		logger.Error("drain", "err", derr)
		return 1
	}
	logger.Info("drained cleanly")
	return 0
}

// runServe serves the API until SIGTERM/SIGINT, then drains and exits.
func runServe(logger *slog.Logger, cfg serve.Config, listen, portFile string, drainTimeout time.Duration, cn *canary.Canary) int {
	srv := serve.New(cfg)
	srv.Start()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		logger.Error("listen", "addr", listen, "err", err)
		return 1
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			logger.Error("writing portfile", "err", err)
			return 1
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Info("serving",
		"url", "http://"+ln.Addr().String(), "workers", cfg.Workers,
		"queue", cfg.QueueDepth, "cache", cfg.CacheSize)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigc:
		logger.Info("draining on signal (in-flight and queued jobs keep running, new submissions get 503)",
			"signal", sig.String())
	case err := <-errc:
		logger.Error("http server", "err", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	completed, derr := srv.Drain(ctx)
	// The HTTP listener stays up during the drain so clients can poll the
	// jobs they already own; shut it down once the queue is empty.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	if derr != nil {
		logger.Error("drain", "err", derr, "jobs_completed", completed)
		return 1
	}
	logger.Info("drained cleanly", "jobs_completed", completed)
	if cn != nil && drainCanary(logger, cn, cfg.Registry) > 0 {
		return 1
	}
	return 0
}

// runLoadGen replays the seeded mix, spinning up an in-process daemon when
// no -target is given (optionally behind chaos fault injection and with a
// canary tapping completed jobs), and writes the benchreport JSON. A
// failed drain or any canary divergence fails the run.
func runLoadGen(logger *slog.Logger, cfg serve.Config, lg serve.LoadGenConfig, out string, chaosCfg *serve.ChaosConfig, cn *canary.Canary, traceDemo bool, clusterN, replication int) int {
	var srv *serve.Server
	var hs *http.Server
	var cl *cluster.InProcess
	if lg.BaseURL == "" && clusterN > 0 {
		if replication > clusterN {
			replication = clusterN
		}
		var err error
		cl, err = cluster.StartInProcess(clusterN, cfg, cluster.Config{
			Replication:        replication,
			CacheSize:          cfg.CacheSize,
			MaxGraphs:          cfg.MaxGraphs,
			Registry:           cfg.Registry,
			SLO:                cfg.SLO,
			FlightRecorderSize: cfg.FlightRecorderSize,
			Logger:             logger.With("component", "router"),
		})
		if err != nil {
			logger.Error("starting in-process cluster", "err", err)
			return 1
		}
		lg.BaseURL = cl.BaseURL
		lg.Nodes = clusterN
		lg.Replication = replication
		logger.Info("loadgen against in-process cluster",
			"url", lg.BaseURL, "nodes", clusterN, "replication", replication,
			"workers_per_node", cfg.Workers)
	} else if lg.BaseURL == "" {
		srv = serve.New(cfg)
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			logger.Error("listen", "err", err)
			return 1
		}
		var handler http.Handler = srv.Handler()
		if chaosCfg != nil {
			handler = serve.NewChaos(*chaosCfg, cfg.Registry).Middleware(handler)
			logger.Info("chaos injection armed",
				"seed", chaosCfg.Seed,
				"reject_429_pct", 100*chaosCfg.Reject429,
				"fail_503_pct", 100*chaosCfg.Fail503,
				"delay_pct", 100*chaosCfg.LatencyRate)
		}
		hs = &http.Server{Handler: handler}
		go func() { _ = hs.Serve(ln) }()
		lg.BaseURL = "http://" + ln.Addr().String()
		logger.Info("loadgen against in-process server", "url", lg.BaseURL, "workers", cfg.Workers)
	}

	res, err := serve.RunLoadGen(lg)

	// The trace demo reads /debug/jobs and /metrics?format=prom while the
	// server is still up — before the drain tears it down.
	if err == nil && traceDemo {
		if derr := runTraceDemo(lg.BaseURL); derr != nil {
			logger.Error("trace demo", "err", derr)
			return 1
		}
	}

	// Drain before judging the run: a drain failure is a real failure
	// (jobs were lost or hung), not shutdown noise to swallow.
	if cl != nil {
		if derr := cl.Close(30 * time.Second); derr != nil {
			logger.Error("cluster drain after loadgen", "err", derr)
			return 1
		}
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, derr := srv.Drain(ctx)
		_ = hs.Shutdown(ctx)
		cancel()
		if derr != nil {
			logger.Error("drain after loadgen", "err", derr)
			return 1
		}
	}
	if err != nil {
		logger.Error("loadgen", "err", err)
		return 1
	}
	if cn != nil {
		res.CanaryDivergences = drainCanary(logger, cn, cfg.Registry)
		res.CanaryChecked = cfg.Registry.Counter(canary.MetricChecked).Value()
	}
	// Without chaos any error is a failure. Under injected faults the bar
	// is the acceptance criterion instead: at least 99% of retried
	// requests must recover, and errors must stay within a 1% job budget.
	if res.Errors > 0 {
		if chaosCfg == nil || float64(res.Errors) > 0.01*float64(lg.Jobs) {
			logger.Error("loadgen jobs errored", "errors", res.Errors)
			return 1
		}
		logger.Info("loadgen jobs errored under chaos (within the 1% budget)", "errors", res.Errors)
	}
	if chaosCfg != nil && res.RetrySuccessPct < 99 {
		logger.Error("retry success under chaos below bar",
			"retry_success_pct", res.RetrySuccessPct, "want_pct", 99)
		return 1
	}
	if res.CanaryDivergences > 0 {
		return 1
	}
	data, err := json.MarshalIndent(res.BenchReport(), "", "  ")
	if err != nil {
		logger.Error("encoding report", "err", err)
		return 1
	}
	data = append(data, '\n')
	if out == "" {
		fmt.Print(string(data))
		return 0
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		logger.Error("writing report", "path", out, "err", err)
		return 1
	}
	logger.Info("wrote report", "path", out)
	return 0
}

// runChurn drives the evolving-graph churn workload, spinning up an
// in-process daemon when no -target is given, and writes the benchreport
// JSON with the incremental-vs-scratch speedup columns.
func runChurn(logger *slog.Logger, cfg serve.Config, cc serve.ChurnConfig, out string) int {
	var srv *serve.Server
	var hs *http.Server
	if cc.BaseURL == "" {
		srv = serve.New(cfg)
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			logger.Error("listen", "err", err)
			return 1
		}
		hs = &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		cc.BaseURL = "http://" + ln.Addr().String()
		logger.Info("churn against in-process server", "url", cc.BaseURL, "workers", cfg.Workers)
	}

	res, err := serve.RunChurn(cc)

	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_, derr := srv.Drain(ctx)
		_ = hs.Shutdown(ctx)
		cancel()
		if derr != nil {
			logger.Error("drain after churn", "err", derr)
			return 1
		}
	}
	if err != nil {
		logger.Error("churn", "err", err)
		return 1
	}
	data, err := json.MarshalIndent(res.BenchReport(), "", "  ")
	if err != nil {
		logger.Error("encoding report", "err", err)
		return 1
	}
	data = append(data, '\n')
	if out == "" {
		fmt.Print(string(data))
		return 0
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		logger.Error("writing report", "path", out, "err", err)
		return 1
	}
	logger.Info("wrote report", "path", out)
	return 0
}

// runTraceDemo prints one complete recorded job timeline (preferring a
// job that actually ran the engine) and the Prometheus exposition page —
// the two new observability surfaces, demonstrated end to end against a
// live server.
func runTraceDemo(baseURL string) error {
	c := &serve.Client{Base: baseURL}
	dj, err := c.DebugJobs()
	if err != nil {
		return fmt.Errorf("fetching /debug/jobs: %w", err)
	}
	var pick *obs.TimelineView
	for _, tl := range dj.Timelines {
		if tl.Outcome == serve.StateDone && tl.SpanByName("engine_run") != nil {
			pick = tl
			break
		}
	}
	if pick == nil && len(dj.Timelines) > 0 {
		pick = dj.Timelines[0]
	}
	if pick == nil {
		return fmt.Errorf("flight recorder is empty (server run with -flight < 0?)")
	}
	// Re-fetch by ID: the demo exercises /debug/jobs/{id}, the lookup an
	// engineer would actually use.
	full, err := c.DebugJob(pick.TraceID)
	if err != nil {
		return fmt.Errorf("fetching /debug/jobs/%s: %w", pick.TraceID, err)
	}
	tj, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("=== job timeline (job_id=%s trace_id=%s, %d spans, total %v) ===\n%s\n",
		full.JobID, full.TraceID, len(full.Spans),
		time.Duration(full.TotalNs), tj)
	prom, err := c.MetricsProm()
	if err != nil {
		return fmt.Errorf("fetching /metrics?format=prom: %w", err)
	}
	fmt.Printf("=== /metrics?format=prom ===\n%s", prom)
	return nil
}
