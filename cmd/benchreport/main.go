// benchreport runs the Go benchmarks of a package, parses the standard
// -benchmem output and writes a machine-readable JSON report — the format
// committed as BENCH_PR3.json and checked by the CI bench-regression job.
// It can also diff two reports:
//
//	go run ./cmd/benchreport -out BENCH_PR3.json          # measure
//	go run ./cmd/benchreport -compare BENCH_PR3.json      # measure + diff
//	go run ./cmd/benchreport -compare old.json -in new.json  # pure diff
//
// A compare exits non-zero only when -max-regress is set and some
// benchmark's ns/op regressed by more than that percentage; CI runs it
// without the flag (report-only, non-gating).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the emitted JSON document. Reference, when present, carries
// the same benchmarks measured on an older engine for the PR's
// before/after claim; the compare mode ignores it.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Package   string `json:"package"`
	Benchtime string `json:"benchtime"`
	// Workload is the loadgen mix descriptor for serve measurements
	// (empty for go test benchmarks). Two reports with different
	// workloads measured different job mixes; diff warns rather than
	// letting the delta table imply a like-for-like comparison.
	Workload   string      `json:"workload,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Reference  *Reference  `json:"reference,omitempty"`
}

// Reference pins the comparison point of a committed report.
type Reference struct {
	Commit     string      `json:"commit"`
	Note       string      `json:"note"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	pkg := flag.String("pkg", "./internal/congest/", "package to benchmark")
	bench := flag.String("bench", "BenchmarkDelivery$|BenchmarkSimulator|BenchmarkSteadyStateRound|BenchmarkSequentialNoTracer|BenchmarkParallelNoTracer",
		"benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "2s", "go test -benchtime")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	in := flag.String("in", "", "read a report instead of running benchmarks (for pure diffs)")
	compare := flag.String("compare", "", "baseline report to diff against")
	maxRegress := flag.Float64("max-regress", 0, "fail when some ns/op regresses by more than this percent (0 = report only)")
	flag.Parse()

	var cur *Report
	var err error
	if *in != "" {
		cur, err = readReport(*in)
	} else {
		cur, err = measure(*pkg, *bench, *benchtime)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}

	if *out != "" {
		// Rewriting a committed report keeps its reference section: the
		// pre-PR measurements are a historical record, not remeasurable.
		if prev, err := readReport(*out); err == nil && cur.Reference == nil {
			cur.Reference = prev.Reference
		}
		if err := writeReport(*out, cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
	} else if *compare == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(cur)
	}

	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		if regressed := diff(base, cur, *maxRegress); regressed && *maxRegress > 0 {
			os.Exit(1)
		}
	}
}

// measure shells out to go test and parses the benchmark table.
func measure(pkg, bench, benchtime string) (*Report, error) {
	cmd := exec.Command("go", "test", "-run=^$", "-bench="+bench,
		"-benchmem", "-benchtime="+benchtime, pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	rep := &Report{
		Schema:    "benchreport-v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Package:   pkg,
		Benchtime: benchtime,
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines matched -bench=%s in %s", bench, pkg)
	}
	return rep, nil
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diff prints a delta table and reports whether any ns/op regression
// exceeds maxRegress percent (always false when maxRegress is 0).
func diff(base, cur *Report, maxRegress float64) bool {
	// A delta table only means something when both sides measured the
	// same thing. Different packages or loadgen workloads (job mix,
	// warm-up, chaos context) make the rows incommensurable — say so
	// up front instead of letting the percentages mislead.
	if base.Package != cur.Package {
		fmt.Printf("WARNING: comparing different packages: base %q vs current %q — deltas below are not like-for-like\n",
			base.Package, cur.Package)
	}
	if base.Workload != cur.Workload {
		fmt.Printf("WARNING: comparing different workloads:\n  base:    %q\n  current: %q\n  deltas below are not like-for-like\n",
			base.Workload, cur.Workload)
	}
	byName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Printf("%-32s %14s %14s %8s %10s %9s\n",
		"benchmark", "base ns/op", "ns/op", "Δ%", "Δ B/op", "Δ allocs")
	regressed := false
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			fmt.Printf("%-32s %14s %14.0f %8s %10s %9s\n", c.Name, "(new)", c.NsPerOp, "", "", "")
			continue
		}
		pct := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		fmt.Printf("%-32s %14.0f %14.0f %+7.1f%% %+10d %+9d\n",
			c.Name, b.NsPerOp, c.NsPerOp, pct,
			c.BytesPerOp-b.BytesPerOp, c.AllocsPerOp-b.AllocsPerOp)
		if maxRegress > 0 && pct > maxRegress {
			regressed = true
		}
	}
	for _, b := range base.Benchmarks {
		found := false
		for _, c := range cur.Benchmarks {
			if c.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-32s %14.0f %14s\n", b.Name, b.NsPerOp, "(gone)")
		}
	}
	return regressed
}
