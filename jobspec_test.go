package subgraph

import (
	"strings"
	"testing"
	"time"
)

func TestParsePattern(t *testing.T) {
	valid := []struct {
		spec string
		n, m int
	}{
		{"triangle", 3, 3},
		{"cycle:3", 3, 3},
		{"cycle:6", 6, 6},
		{"clique:4", 4, 6},
		{"path:4", 4, 3},
		{"star:3", 4, 3}, // star:L = hub + L leaves
	}
	for _, tc := range valid {
		h, err := ParsePattern(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if h.N() != tc.n || h.M() != tc.m {
			t.Errorf("%s: shape (%d,%d), want (%d,%d)", tc.spec, h.N(), h.M(), tc.n, tc.m)
		}
	}

	// The aliases the serve layer's cache keying relies on.
	tri, _ := ParsePattern("triangle")
	c3, _ := ParsePattern("cycle:3")
	k3, _ := ParsePattern("clique:3")
	if tri.Digest() != c3.Digest() || tri.Digest() != k3.Digest() {
		t.Error("triangle / cycle:3 / clique:3 digests differ")
	}

	for _, spec := range []string{
		"", "hexagon", "cycle", "cycle:", "cycle:x", "cycle:2", "clique:1",
		"path:-3", "cycle:65", "star:9999999999999999999",
	} {
		if _, err := ParsePattern(spec); err == nil {
			t.Errorf("%q: accepted, want error", spec)
		}
	}
}

func TestOptionsSpecRoundTrip(t *testing.T) {
	orig := Options{
		Reps: 7, Seed: 42, Parallel: true, Resilient: true,
		Deadline: 1500 * time.Millisecond,
		Faults: &FaultPlan{
			Seed: 3, DropRate: 0.25, CorruptRate: 0.5, CorruptFlips: 2,
			Drops:     []TargetedDrop{{Round: 2, From: 0, To: 1}},
			Crashes:   []Crash{{Vertex: 4, Round: 3}},
			Throttles: []Throttle{{FromRound: 1, ToRound: 5, Bits: 8}},
		},
	}
	spec := OptionsSpecOf(orig)
	back, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if back.Reps != orig.Reps || back.Seed != orig.Seed || back.Parallel != orig.Parallel ||
		back.Resilient != orig.Resilient || back.Deadline != orig.Deadline {
		t.Fatalf("scalar fields changed in round trip: %+v vs %+v", back, orig)
	}
	if back.Faults == nil || back.Faults.DropRate != orig.Faults.DropRate ||
		len(back.Faults.Drops) != 1 || len(back.Faults.Crashes) != 1 || len(back.Faults.Throttles) != 1 {
		t.Fatalf("fault plan changed in round trip: %+v", back.Faults)
	}

	// Empty fault plans normalize to nil in both directions.
	if FaultSpecOf(&FaultPlan{Seed: 9}) != nil {
		t.Error("empty FaultPlan did not normalize to nil spec")
	}
	if (&FaultSpec{Seed: 9}).Plan() != nil {
		t.Error("empty FaultSpec did not normalize to nil plan")
	}
}

func TestOptionsSpecValidation(t *testing.T) {
	bad := []OptionsSpec{
		{Reps: -1},
		{DeadlineMs: -5},
		{Faults: &FaultSpec{DropRate: 1.5}},
		{Faults: &FaultSpec{CorruptRate: -0.1}},
	}
	for i, s := range bad {
		if _, err := s.Options(); err == nil {
			t.Errorf("case %d: accepted, want error", i)
		}
	}
}

func TestOptionsSpecCanonical(t *testing.T) {
	// Deterministic, and zero values are elided entirely.
	if got := (OptionsSpec{}).Canonical(); got != "{}" {
		t.Fatalf("zero spec canonical = %s, want {}", got)
	}
	a := OptionsSpec{Seed: 5, Reps: 10}
	if a.Canonical() != a.Canonical() {
		t.Fatal("canonical form not deterministic")
	}
	// An injects-nothing fault spec canonicalizes away — the execution is
	// identical to the fault-free one, so the cache key must be too.
	b := OptionsSpec{Seed: 5, Reps: 10, Faults: &FaultSpec{Seed: 77}}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("no-op fault plan changed the canonical form:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if b.Faults == nil {
		t.Fatal("Canonical mutated its receiver's fault spec")
	}
	// Distinct options → distinct keys.
	c := OptionsSpec{Seed: 6, Reps: 10}
	if a.Canonical() == c.Canonical() {
		t.Fatal("different seeds share a canonical form")
	}
	if !strings.Contains(a.Canonical(), `"seed":5`) {
		t.Fatalf("canonical form lost the seed: %s", a.Canonical())
	}
}
