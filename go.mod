module subgraph

go 1.22
